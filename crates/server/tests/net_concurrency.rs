//! Concurrent-client determinism over the wire: racing registrations
//! compile exactly once, wire-served job results are bit-identical to
//! direct serial engine calls, distinct-circuit races stay isolated,
//! and a streamed `AwaitJob` exposes the job's chunk-by-chunk advance.

use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use sinw_atpg::faultsim::seeded_patterns;
use sinw_atpg::simulate_faults;
use sinw_server::failpoint::{self, FailAction, FailConfig};
use sinw_server::jobs::{JobEngine, JobOutcome, JobSpec};
use sinw_server::net::{NetClient, NetConfig, NetServer};
use sinw_server::registry::compile_circuit;
use sinw_server::wire::{WireJob, WireOutcome};
use sinw_switch::generate::carry_select_adder;
use sinw_switch::iscas::{parse_bench, to_bench, CSA16_BENCH};

/// Fail-point state is process-global; tests that arm (or must observe
/// zero) injections serialize on one lock.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The fault-free serial reference for the csa16 fixture at `n`
/// patterns: the exact wire outcome every served job must reproduce.
fn csa16_reference(n_patterns: usize, seed: u64) -> (Vec<Vec<bool>>, WireOutcome) {
    let circuit = parse_bench(CSA16_BENCH).expect("fixture parses");
    let compiled = compile_circuit("csa16", circuit);
    let patterns = seeded_patterns(compiled.circuit().primary_inputs().len(), n_patterns, seed);
    let report = simulate_faults(
        compiled.circuit(),
        &compiled.collapsed().representatives,
        &patterns,
        true,
    );
    (patterns, WireOutcome::from_fault_sim(&report))
}

fn race(clients: usize) {
    let _serial = serial();
    failpoint::clear();
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();
    let (patterns, reference) = csa16_reference(32, 0x5EED ^ clients as u64);

    let barrier = Arc::new(Barrier::new(clients));
    let results: Vec<(u64, WireOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let patterns = patterns.clone();
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    barrier.wait();
                    let (key, _) = client
                        .register_bench("csa16", CSA16_BENCH)
                        .expect("racing registration succeeds");
                    let job = client
                        .submit(WireJob::FaultSim {
                            key,
                            patterns,
                            drop_detected: true,
                            threads: 2,
                            timeout_ms: 120_000,
                        })
                        .expect("submit");
                    let outcome = client.await_job(job, |_, _| {}).expect("await");
                    (key, outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let stats = server.registry().stats();
    assert_eq!(
        stats.compiles, 1,
        "{clients} racing clients must cost exactly one compile"
    );
    assert!(stats.hits >= (clients as u64) - 1);
    let first_key = results[0].0;
    for (key, outcome) in &results {
        assert_eq!(*key, first_key, "every racer sees the same content key");
        assert_eq!(
            outcome, &reference,
            "wire-served result must be bit-identical to the serial reference"
        );
    }
    server.shutdown();
}

#[test]
fn two_racing_clients_compile_once_and_agree_with_serial() {
    race(2);
}

#[test]
fn four_racing_clients_compile_once_and_agree_with_serial() {
    race(4);
}

#[test]
fn eight_racing_clients_compile_once_and_agree_with_serial() {
    race(8);
}

#[test]
fn distinct_circuit_races_stay_isolated() {
    let _serial = serial();
    failpoint::clear();
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();

    // Four distinct generated adders, one per client, racing. The
    // reference compiles the exact bench text the client will send.
    let widths = [4usize, 6, 8, 10];
    let sources: Vec<String> = widths
        .iter()
        .map(|&w| to_bench(&carry_select_adder(w, 2), &format!("csel{w}")))
        .collect();
    let references: Vec<(Vec<Vec<bool>>, WireOutcome)> = widths
        .iter()
        .zip(&sources)
        .map(|(&w, source)| {
            let circuit = parse_bench(source).expect("exported bench parses");
            let compiled = compile_circuit(&format!("csel{w}"), circuit);
            let patterns = seeded_patterns(compiled.circuit().primary_inputs().len(), 24, w as u64);
            let report = simulate_faults(
                compiled.circuit(),
                &compiled.collapsed().representatives,
                &patterns,
                true,
            );
            (patterns, WireOutcome::from_fault_sim(&report))
        })
        .collect();

    let barrier = Arc::new(Barrier::new(widths.len()));
    let keys: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = widths
            .iter()
            .zip(&sources)
            .zip(&references)
            .map(|((&w, source), (patterns, reference))| {
                let barrier = Arc::clone(&barrier);
                let patterns = patterns.clone();
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    barrier.wait();
                    let (key, _) = client
                        .register_bench(&format!("csel{w}"), source)
                        .expect("register");
                    let job = client
                        .submit(WireJob::FaultSim {
                            key,
                            patterns,
                            drop_detected: true,
                            threads: 1,
                            timeout_ms: 120_000,
                        })
                        .expect("submit");
                    let outcome = client.await_job(job, |_, _| {}).expect("await");
                    assert_eq!(
                        &outcome, reference,
                        "width-{w} result crossed wires with another circuit"
                    );
                    key
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Four distinct circuits: four distinct keys, four compiles.
    let mut unique = keys.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        widths.len(),
        "distinct circuits, distinct keys"
    );
    assert_eq!(server.registry().stats().compiles, widths.len() as u64);
    server.shutdown();
}

/// The acceptance path of the issue: a loopback client registers a
/// circuit, submits a job, observes **≥ 2 distinct streamed progress
/// values** before completion, and receives a result bit-identical to
/// the in-process `JobEngine` path.
#[test]
fn streamed_progress_advances_and_outcome_matches_in_process_engine() {
    let _serial = serial();
    failpoint::clear();
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();

    let circuit = parse_bench(CSA16_BENCH).expect("fixture parses");
    let compiled = Arc::new(compile_circuit("csa16", circuit));
    let patterns = Arc::new(seeded_patterns(
        compiled.circuit().primary_inputs().len(),
        48,
        0xA11CE,
    ));

    // In-process reference through the same engine type.
    let engine = JobEngine::new(2);
    let reference = match engine
        .submit(JobSpec::FaultSim {
            compiled: Arc::clone(&compiled),
            patterns: Arc::clone(&patterns),
            drop_detected: false,
            threads: 2,
        })
        .wait()
    {
        outcome @ JobOutcome::FaultSim(_) => WireOutcome::from_outcome(&outcome),
        other => panic!("reference job failed: {other:?}"),
    };
    engine.shutdown();

    // Slow every chunk so the wire stream can observe the advance
    // chunk by chunk.
    let _delay = failpoint::scoped(
        "jobs.faultsim.chunk",
        FailConfig::always(FailAction::Delay(Duration::from_millis(5))),
    );

    let mut client = NetClient::connect(addr).expect("connect");
    let (key, _) = client
        .register_bench("csa16", CSA16_BENCH)
        .expect("register");
    let job = client
        .submit(WireJob::FaultSim {
            key,
            patterns: patterns.as_ref().clone(),
            drop_detected: false,
            threads: 1,
            timeout_ms: 120_000,
        })
        .expect("submit");

    let mut observed: Vec<(u64, u64)> = Vec::new();
    let outcome = client
        .await_job(job, |done, total| observed.push((done, total)))
        .expect("await");

    let distinct: std::collections::BTreeSet<u64> =
        observed.iter().map(|&(done, _)| done).collect();
    assert!(
        distinct.len() >= 2,
        "expected >= 2 distinct streamed progress values, saw {observed:?}"
    );
    let (final_done, final_total) = *observed.last().expect("at least one frame");
    assert_eq!(final_done, final_total, "the final frame shows completion");
    assert!(final_total >= 2, "csa16 spans multiple chunks");
    assert!(
        observed.windows(2).all(|w| w[0].0 <= w[1].0),
        "progress is monotone: {observed:?}"
    );
    assert_eq!(
        outcome, reference,
        "wire outcome must be bit-identical to the in-process engine path"
    );
    server.shutdown();
}

/// Cancellation over the wire reaches a terminal `Cancelled` outcome.
#[test]
fn cancel_over_the_wire_terminates_the_job() {
    let _serial = serial();
    failpoint::clear();
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr();

    // Slow chunks give cancellation a window to land mid-job.
    let _delay = failpoint::scoped(
        "jobs.faultsim.chunk",
        FailConfig::always(FailAction::Delay(Duration::from_millis(20))),
    );

    let mut client = NetClient::connect(addr).expect("connect");
    let (key, _) = client
        .register_bench("csa16", CSA16_BENCH)
        .expect("register");
    let patterns = {
        let circuit = parse_bench(CSA16_BENCH).expect("fixture parses");
        seeded_patterns(circuit.primary_inputs().len(), 32, 77)
    };
    let job = client
        .submit(WireJob::FaultSim {
            key,
            patterns,
            drop_detected: false,
            threads: 1,
            timeout_ms: 120_000,
        })
        .expect("submit");
    let (_, _, finished) = client.cancel(job).expect("cancel");
    let _ = finished; // may or may not have landed before completion
    let outcome = client.await_job(job, |_, _| {}).expect("await");
    assert!(
        matches!(
            outcome,
            WireOutcome::Cancelled | WireOutcome::FaultSim { .. }
        ),
        "cancel resolves to a terminal outcome: {outcome:?}"
    );
    server.shutdown();
}

//! Per-client sessions over the service: byte and job quotas, activity
//! tracking, and idle reaping.
//!
//! A **session** is the server-side state of one client connection: a
//! numeric id, a cumulative byte account of everything the client has
//! registered, the set of jobs it has in flight, and a last-activity
//! stamp. Quotas come from one [`SessionLimits`] shared by every
//! session; breaching either quota is a typed [`SessionError`] the wire
//! layer maps onto a backpressure frame — the request is refused, the
//! session (and its connection) stays healthy.
//!
//! The lifecycle invariants the quota property test pins down:
//!
//! * the byte account never exceeds `max_bytes` — a register request is
//!   checked *before* any compile work and charged only on success;
//! * at most `max_inflight_jobs` unfinished jobs exist per session —
//!   finished handles are pruned on every check, so slots recycle as
//!   work completes;
//! * [`SessionManager::reap`] removes only sessions that are both idle
//!   past `idle_timeout` **and** have zero jobs in flight — reaping
//!   never strands a running job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::jobs::JobHandle;

/// Per-session quotas, shared by every session of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLimits {
    /// Cumulative register-request payload bytes a session may spend.
    pub max_bytes: u64,
    /// Maximum unfinished jobs a session may hold at once.
    pub max_inflight_jobs: usize,
    /// Idle time after which a session with no in-flight jobs is
    /// reapable.
    pub idle_timeout: Duration,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            max_bytes: 64 * 1024 * 1024,
            max_inflight_jobs: 32,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Typed quota / lookup failure. The wire layer maps these onto
/// backpressure error frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The register request would push the session past its byte quota.
    ByteQuota {
        /// Bytes already charged.
        used: u64,
        /// Bytes the request asked for.
        requested: u64,
        /// The session's quota.
        quota: u64,
    },
    /// The session already holds its maximum of unfinished jobs.
    JobQuota {
        /// Unfinished jobs currently held.
        in_flight: usize,
        /// The session's quota.
        quota: usize,
    },
    /// The session id names no open session.
    UnknownSession {
        /// The id that missed.
        id: u64,
    },
    /// The job id names no job of this session.
    UnknownJob {
        /// The id that missed.
        id: u64,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ByteQuota {
                used,
                requested,
                quota,
            } => write!(
                f,
                "byte quota: {used} used + {requested} requested exceeds {quota}"
            ),
            SessionError::JobQuota { in_flight, quota } => {
                write!(f, "job quota: {in_flight} in flight of {quota} allowed")
            }
            SessionError::UnknownSession { id } => write!(f, "unknown session {id}"),
            SessionError::UnknownJob { id } => write!(f, "unknown job {id}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Point-in-time view of one session's accounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionView {
    /// Bytes charged so far.
    pub bytes_used: u64,
    /// Unfinished jobs currently held.
    pub in_flight: usize,
}

struct SessionState {
    bytes_used: u64,
    jobs: HashMap<u64, JobHandle>,
    last_activity: Instant,
}

impl SessionState {
    /// Drop handles whose jobs have reached a terminal outcome; the
    /// surviving count is the session's in-flight account.
    fn prune(&mut self) -> usize {
        self.jobs.retain(|_, handle| !handle.is_finished());
        self.jobs.len()
    }
}

/// The server's session table. All methods take `&self`; one internal
/// lock serializes the table (sessions are coarse-grained — the heavy
/// work happens in the registry and job engine, not here).
pub struct SessionManager {
    limits: SessionLimits,
    inner: Mutex<HashMap<u64, SessionState>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("limits", &self.limits)
            .field("open", &self.len())
            .finish()
    }
}

impl SessionManager {
    /// A manager enforcing `limits` on every session.
    #[must_use]
    pub fn new(limits: SessionLimits) -> Self {
        SessionManager {
            limits,
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The shared per-session limits.
    #[must_use]
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    fn table(&self) -> MutexGuard<'_, HashMap<u64, SessionState>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Open a new session and return its id.
    pub fn open(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.table().insert(
            id,
            SessionState {
                bytes_used: 0,
                jobs: HashMap::new(),
                last_activity: Instant::now(),
            },
        );
        id
    }

    /// Close a session, dropping its job handles (the jobs themselves
    /// keep running to their terminal outcome — a handle is a view, not
    /// an owner).
    pub fn close(&self, id: u64) {
        self.table().remove(&id);
    }

    /// Number of open sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// Whether no session is open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stamp activity on a session (any decoded request counts).
    pub fn touch(&self, id: u64) {
        if let Some(s) = self.table().get_mut(&id) {
            s.last_activity = Instant::now();
        }
    }

    /// Check whether `requested` more bytes fit under the session's
    /// byte quota — called before compile work is spent on a register
    /// request.
    ///
    /// # Errors
    ///
    /// [`SessionError::ByteQuota`] when the request would breach the
    /// quota; [`SessionError::UnknownSession`] when `id` is not open.
    pub fn check_bytes(&self, id: u64, requested: u64) -> Result<(), SessionError> {
        let table = self.table();
        let s = table.get(&id).ok_or(SessionError::UnknownSession { id })?;
        if s.bytes_used.saturating_add(requested) > self.limits.max_bytes {
            return Err(SessionError::ByteQuota {
                used: s.bytes_used,
                requested,
                quota: self.limits.max_bytes,
            });
        }
        Ok(())
    }

    /// Charge `bytes` to the session — called only after the register
    /// request succeeded, so refused work costs no quota.
    ///
    /// # Errors
    ///
    /// Same conditions as [`check_bytes`](SessionManager::check_bytes);
    /// under the one-request-at-a-time discipline of a connection
    /// handler a passed check cannot fail here.
    pub fn charge_bytes(&self, id: u64, bytes: u64) -> Result<(), SessionError> {
        let mut table = self.table();
        let s = table
            .get_mut(&id)
            .ok_or(SessionError::UnknownSession { id })?;
        if s.bytes_used.saturating_add(bytes) > self.limits.max_bytes {
            return Err(SessionError::ByteQuota {
                used: s.bytes_used,
                requested: bytes,
                quota: self.limits.max_bytes,
            });
        }
        s.bytes_used += bytes;
        Ok(())
    }

    /// Check whether the session may take one more job, pruning
    /// finished handles first so completed work recycles its slot.
    ///
    /// # Errors
    ///
    /// [`SessionError::JobQuota`] when every slot holds an unfinished
    /// job; [`SessionError::UnknownSession`] when `id` is not open.
    pub fn check_job_slot(&self, id: u64) -> Result<(), SessionError> {
        let mut table = self.table();
        let s = table
            .get_mut(&id)
            .ok_or(SessionError::UnknownSession { id })?;
        let in_flight = s.prune();
        if in_flight >= self.limits.max_inflight_jobs {
            return Err(SessionError::JobQuota {
                in_flight,
                quota: self.limits.max_inflight_jobs,
            });
        }
        Ok(())
    }

    /// Attach a submitted job's handle to the session.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] when `id` is not open.
    pub fn attach_job(&self, id: u64, handle: JobHandle) -> Result<(), SessionError> {
        let mut table = self.table();
        let s = table
            .get_mut(&id)
            .ok_or(SessionError::UnknownSession { id })?;
        s.last_activity = Instant::now();
        s.jobs.insert(handle.id(), handle);
        Ok(())
    }

    /// Look up one of the session's jobs (finished jobs included —
    /// clients poll outcomes after completion).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownJob`] when the job is not this session's;
    /// [`SessionError::UnknownSession`] when `id` is not open.
    pub fn job(&self, id: u64, job_id: u64) -> Result<JobHandle, SessionError> {
        let table = self.table();
        let s = table.get(&id).ok_or(SessionError::UnknownSession { id })?;
        s.jobs
            .get(&job_id)
            .cloned()
            .ok_or(SessionError::UnknownJob { id: job_id })
    }

    /// Unfinished jobs the session currently holds (pruning finished
    /// handles as a side effect).
    #[must_use]
    pub fn in_flight(&self, id: u64) -> usize {
        self.table().get_mut(&id).map_or(0, SessionState::prune)
    }

    /// Unfinished jobs across every open session.
    #[must_use]
    pub fn total_in_flight(&self) -> usize {
        let mut table = self.table();
        table.values_mut().map(SessionState::prune).sum()
    }

    /// Point-in-time view of one session's accounts.
    #[must_use]
    pub fn view(&self, id: u64) -> Option<SessionView> {
        let mut table = self.table();
        let s = table.get_mut(&id)?;
        let in_flight = s.prune();
        Some(SessionView {
            bytes_used: s.bytes_used,
            in_flight,
        })
    }

    /// Remove (and return the ids of) every session that is idle past
    /// the configured `idle_timeout` **and** holds no unfinished job —
    /// a session with work in flight is never reaped, however stale.
    pub fn reap(&self) -> Vec<u64> {
        let now = Instant::now();
        let mut table = self.table();
        let mut dead = Vec::new();
        for (&id, s) in table.iter_mut() {
            if now.duration_since(s.last_activity) >= self.limits.idle_timeout && s.prune() == 0 {
                dead.push(id);
            }
        }
        for id in &dead {
            table.remove(id);
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobEngine, JobSpec};
    use crate::registry::compile_circuit;
    use sinw_atpg::faultsim::seeded_patterns;
    use std::sync::Arc;

    fn tiny_limits() -> SessionLimits {
        SessionLimits {
            max_bytes: 100,
            max_inflight_jobs: 2,
            idle_timeout: Duration::from_millis(10),
        }
    }

    #[test]
    fn byte_quota_is_checked_and_charged() {
        let m = SessionManager::new(tiny_limits());
        let s = m.open();
        assert!(m.check_bytes(s, 60).is_ok());
        m.charge_bytes(s, 60).expect("within quota");
        assert!(m.check_bytes(s, 40).is_ok(), "exactly at quota is fine");
        let err = m.check_bytes(s, 41).expect_err("over quota");
        assert_eq!(
            err,
            SessionError::ByteQuota {
                used: 60,
                requested: 41,
                quota: 100
            }
        );
        assert_eq!(m.view(s).expect("open").bytes_used, 60);
    }

    #[test]
    fn unknown_sessions_and_jobs_are_typed() {
        let m = SessionManager::new(tiny_limits());
        assert_eq!(
            m.check_bytes(99, 1),
            Err(SessionError::UnknownSession { id: 99 })
        );
        let s = m.open();
        assert_eq!(m.job(s, 7).err(), Some(SessionError::UnknownJob { id: 7 }));
        m.close(s);
        assert_eq!(
            m.job(s, 7).err(),
            Some(SessionError::UnknownSession { id: s })
        );
    }

    #[test]
    fn job_slots_recycle_as_work_finishes() {
        let m = SessionManager::new(tiny_limits());
        let s = m.open();
        let engine = JobEngine::new(2);
        let compiled = Arc::new(compile_circuit("c17", sinw_switch::gate::Circuit::c17()));
        let patterns = Arc::new(seeded_patterns(
            compiled.circuit().primary_inputs().len(),
            8,
            1,
        ));
        for _ in 0..2 {
            m.check_job_slot(s).expect("slot free");
            let handle = engine.submit(JobSpec::FaultSim {
                compiled: Arc::clone(&compiled),
                patterns: Arc::clone(&patterns),
                drop_detected: true,
                threads: 1,
            });
            m.attach_job(s, handle).expect("attach");
        }
        // Both slots may still be busy; once the work drains the slots
        // must recycle.
        engine.shutdown(); // drains: both jobs reach terminal outcomes
        assert_eq!(m.in_flight(s), 0, "finished handles prune away");
        m.check_job_slot(s).expect("slots recycled");
    }

    #[test]
    fn reaping_spares_sessions_with_inflight_jobs() {
        let m = SessionManager::new(tiny_limits());
        let idle = m.open();
        let busy = m.open();
        let engine = JobEngine::new(1);
        // Queue several jobs behind one worker so the busy session still
        // holds unfinished work when the 10 ms idle window expires.
        let compiled = Arc::new(compile_circuit(
            "mul3",
            sinw_switch::generate::array_multiplier(3),
        ));
        let patterns = Arc::new(seeded_patterns(
            compiled.circuit().primary_inputs().len(),
            64,
            2,
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                engine.submit(JobSpec::FaultSim {
                    compiled: Arc::clone(&compiled),
                    patterns: Arc::clone(&patterns),
                    drop_detected: false,
                    threads: 1,
                })
            })
            .collect();
        for h in &handles {
            m.attach_job(busy, h.clone()).expect("attach");
        }
        std::thread::sleep(Duration::from_millis(15));
        let dead = m.reap();
        assert!(dead.contains(&idle), "idle session reaped");
        let reaped_early = dead.contains(&busy);
        if reaped_early {
            // Only legal if every job had already finished.
            for h in &handles {
                assert!(h.is_finished(), "reaped a session with work in flight");
            }
        }
        // Once the work drains and the session stays idle, it reaps too.
        for h in &handles {
            let _ = h.wait();
        }
        std::thread::sleep(Duration::from_millis(15));
        if !reaped_early {
            assert!(m.reap().contains(&busy), "drained idle session reaps");
        }
        engine.shutdown();
    }
}

//! The compiled-circuit registry: parse → map → collapse → graph-build
//! once, serve forever.
//!
//! A [`CompiledCircuit`] bundles everything the engines derive from a
//! circuit before the first pattern is simulated: the mapped [`Circuit`]
//! itself, the enumerated stuck-at universe, its structural collapse, and
//! the levelized [`SimGraph`] precompute. [`compile_circuit`] is the
//! **single implementation of that pipeline** in the workspace — the
//! experiment drivers, the examples, the job engine, and the snapshot
//! restore path all route through it, so the compile path cannot fork.
//!
//! [`CircuitRegistry`] caches compiled artifacts keyed by a content hash
//! of the source (FNV-1a over the `.bench` text for
//! [`register_bench`](CircuitRegistry::register_bench), over the
//! canonical snapshot encoding for
//! [`register_circuit`](CircuitRegistry::register_circuit)). The hit
//! path performs the hash and a map lookup and **nothing else** — no
//! parse, no fault enumeration, no collapse, no graph build — which the
//! [`RegistryStats::compiles`] counter makes assertable. Concurrent
//! registrations of the same source are serialized per key: exactly one
//! caller compiles while the rest block on the per-key slot and then
//! share the same `Arc`.

use crate::snapshot::Snapshot;
use sinw_atpg::collapse::{collapse, CollapsedFaults};
use sinw_atpg::fault_list::{enumerate_stuck_at, StuckAtFault};
use sinw_atpg::graph::SimGraph;
use sinw_switch::gate::Circuit;
use sinw_switch::iscas::{parse_bench, BenchParseError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64 content hash with a one-byte domain tag, so `.bench` text
/// and canonical circuit bytes can never alias onto the same key.
fn fnv1a(domain: u8, bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ u64::from(domain);
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Key domain for `.bench` source text.
const DOMAIN_BENCH: u8 = 0xB5;
/// Key domain for canonical circuit bytes (generated circuits, snapshots).
const DOMAIN_CANONICAL: u8 = 0xC4;

/// Everything the engines derive from a circuit before simulating the
/// first pattern, compiled once and shared immutably.
#[derive(Debug)]
pub struct CompiledCircuit {
    name: String,
    key: u64,
    circuit: Circuit,
    faults: Vec<StuckAtFault>,
    collapsed: CollapsedFaults,
    graph: SimGraph,
}

impl CompiledCircuit {
    /// Human-readable circuit name (registry label, not part of the key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content-hash key this artifact is registered under.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The mapped gate-level circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The full enumerated single-stuck-at universe.
    #[must_use]
    pub fn faults(&self) -> &[StuckAtFault] {
        &self.faults
    }

    /// Structural equivalence collapse of [`faults`](Self::faults); its
    /// `representatives` are the service's working fault list.
    #[must_use]
    pub fn collapsed(&self) -> &CollapsedFaults {
        &self.collapsed
    }

    /// The levelized simulation-graph precompute, built once here and
    /// reused by every `*_with_graph` engine call.
    #[must_use]
    pub fn graph(&self) -> &SimGraph {
        &self.graph
    }

    /// Snapshot this artifact for a `.sinw` file (circuit + universe +
    /// collapse; the graph is derived and cheap, so it is rebuilt on
    /// restore rather than serialized).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            name: self.name.clone(),
            circuit: self.circuit.clone(),
            faults: self.faults.clone(),
            collapsed: Some(self.collapsed.clone()),
            dictionary: None,
        }
    }

    /// Restore an artifact from a decoded [`Snapshot`], reusing the
    /// stored universe and collapse when present (the restart fast path)
    /// and recompiling the missing pieces through [`compile_circuit`]
    /// otherwise. The graph precompute is always rebuilt — it is derived
    /// state the snapshot format deliberately does not carry.
    #[must_use]
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        let Snapshot {
            name,
            circuit,
            faults,
            collapsed,
            ..
        } = snapshot;
        if faults.is_empty() || collapsed.is_none() {
            return compile_circuit(&name, circuit);
        }
        let key = canonical_key(&circuit);
        let collapsed = collapsed.expect("checked above");
        let graph = SimGraph::build(&circuit);
        CompiledCircuit {
            name,
            key,
            circuit,
            faults,
            collapsed,
            graph,
        }
    }
}

/// Content key of a circuit with no source text: FNV-1a over its
/// canonical snapshot encoding.
fn canonical_key(circuit: &Circuit) -> u64 {
    fnv1a(
        DOMAIN_CANONICAL,
        &crate::snapshot::canonical_circuit_bytes(circuit),
    )
}

/// The one compile-path implementation: enumerate the stuck-at universe,
/// collapse it, and build the [`SimGraph`] precompute for an
/// already-mapped circuit. Every driver that needs the compiled pipeline
/// — registry misses, snapshot restores, the experiment drivers, the
/// examples — calls this (or [`CircuitRegistry::register_bench`], which
/// parses and then calls this).
#[must_use]
pub fn compile_circuit(name: &str, circuit: Circuit) -> CompiledCircuit {
    let key = canonical_key(&circuit);
    let faults = enumerate_stuck_at(&circuit);
    let collapsed = collapse(&circuit, &faults);
    let graph = SimGraph::build(&circuit);
    CompiledCircuit {
        name: name.to_string(),
        key,
        circuit,
        faults,
        collapsed,
        graph,
    }
}

/// Registry throughput counters (monotonic, over the registry's
/// lifetime) plus the current entry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Registrations that found a finished artifact (no work done).
    pub hits: u64,
    /// Registrations that found no finished artifact (the first of a
    /// concurrent burst compiles; the rest block on the slot and are
    /// counted as hits once it fills).
    pub misses: u64,
    /// Compile-pipeline runs actually performed. With `N` threads
    /// registering the same source concurrently this stays exactly 1.
    pub compiles: u64,
    /// Distinct sources currently registered.
    pub entries: usize,
}

/// One registry slot: the per-key mutex serializes compilation so a
/// concurrent burst of registrations runs the pipeline exactly once.
type Slot = Arc<Mutex<Option<Arc<CompiledCircuit>>>>;

/// A concurrent cache of compiled circuits keyed by content hash.
#[derive(Debug, Default)]
pub struct CircuitRegistry {
    slots: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
}

impl CircuitRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-key slot, created empty on first sight. The global map
    /// lock is held only for the lookup, never during compilation.
    fn slot(&self, key: u64) -> Slot {
        self.slots
            .lock()
            .expect("registry map poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    /// Hit-or-compile on a slot. Exactly one caller runs `build` per
    /// empty slot; concurrent callers block on the slot mutex and share
    /// the artifact it installs.
    fn lookup_or_compile<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<CompiledCircuit, E>,
    ) -> Result<Arc<CompiledCircuit>, E> {
        let slot = self.slot(key);
        let mut guard = slot.lock().expect("registry slot poisoned");
        if let Some(artifact) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            return Ok(Arc::clone(artifact));
        }
        self.misses.fetch_add(1, Ordering::SeqCst);
        self.compiles.fetch_add(1, Ordering::SeqCst);
        let artifact = Arc::new(build()?);
        *guard = Some(Arc::clone(&artifact));
        Ok(artifact)
    }

    /// Register a `.bench` source. The key is a hash of the raw text, so
    /// a hit skips parsing, mapping, fault enumeration, collapsing, and
    /// graph building entirely; a miss parses and runs
    /// [`compile_circuit`] while holding the per-key slot.
    ///
    /// # Errors
    ///
    /// Propagates the parse error of a miss whose source is invalid (the
    /// slot stays empty, so a later registration retries).
    pub fn register_bench(
        &self,
        name: &str,
        source: &str,
    ) -> Result<Arc<CompiledCircuit>, BenchParseError> {
        let key = fnv1a(DOMAIN_BENCH, source.as_bytes());
        self.lookup_or_compile(key, || {
            let circuit = parse_bench(source)?;
            let mut compiled = compile_circuit(name, circuit);
            compiled.key = key;
            Ok(compiled)
        })
    }

    /// Register an already-built circuit (a parametric generator, a
    /// decoded snapshot). The key is a hash of the canonical circuit
    /// encoding; a hit skips fault enumeration, collapsing, and graph
    /// building.
    pub fn register_circuit(&self, name: &str, circuit: Circuit) -> Arc<CompiledCircuit> {
        let key = canonical_key(&circuit);
        let result: Result<_, std::convert::Infallible> =
            self.lookup_or_compile(key, || Ok(compile_circuit(name, circuit)));
        match result {
            Ok(artifact) => artifact,
            Err(never) => match never {},
        }
    }

    /// Seed the registry with a pre-compiled artifact (the snapshot
    /// restore path) under its own key. Counts as neither hit, miss, nor
    /// compile; an existing finished entry wins and is returned instead.
    pub fn insert(&self, artifact: Arc<CompiledCircuit>) -> Arc<CompiledCircuit> {
        let slot = self.slot(artifact.key());
        let mut guard = slot.lock().expect("registry slot poisoned");
        match guard.as_ref() {
            Some(existing) => Arc::clone(existing),
            None => {
                *guard = Some(Arc::clone(&artifact));
                artifact
            }
        }
    }

    /// The finished artifact under `key`, if any. A pure query: does not
    /// touch the hit/miss counters and never waits on an in-flight
    /// compile.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<CompiledCircuit>> {
        let slot = {
            let slots = self.slots.lock().expect("registry map poisoned");
            slots.get(&key)?.clone()
        };
        let guard = slot.try_lock().ok()?;
        guard.as_ref().map(Arc::clone)
    }

    /// Current counters and entry count. `entries` counts finished
    /// artifacts only (a slot whose compile failed or is in flight is
    /// not an entry).
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let entries = {
            let slots = self.slots.lock().expect("registry map poisoned");
            let slot_list: Vec<Slot> = slots.values().cloned().collect();
            drop(slots);
            slot_list
                .iter()
                .filter(|s| s.lock().map(|g| g.is_some()).unwrap_or(false))
                .count()
        };
        RegistryStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            compiles: self.compiles.load(Ordering::SeqCst),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinw_switch::iscas::{C17_BENCH, CSA16_BENCH};

    #[test]
    fn hit_returns_the_same_arc_and_compiles_once() {
        let reg = CircuitRegistry::new();
        let a = reg.register_bench("c17", C17_BENCH).expect("c17 parses");
        let b = reg.register_bench("c17", C17_BENCH).expect("c17 parses");
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_sources_get_distinct_entries() {
        let reg = CircuitRegistry::new();
        let a = reg.register_bench("c17", C17_BENCH).expect("parses");
        let b = reg.register_bench("csa16", CSA16_BENCH).expect("parses");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().entries, 2);
        assert_eq!(reg.stats().compiles, 2);
    }

    #[test]
    fn parse_errors_propagate_and_leave_the_slot_retryable() {
        let reg = CircuitRegistry::new();
        let bad = "INPUT(a)\nb = FROB(a)\nOUTPUT(b)\n";
        assert!(reg.register_bench("bad", bad).is_err());
        assert_eq!(reg.stats().entries, 0);
        // A later valid registration under a different key still works,
        // and retrying the bad source fails again rather than caching.
        assert!(reg.register_bench("bad", bad).is_err());
        assert!(reg.register_bench("c17", C17_BENCH).is_ok());
    }

    #[test]
    fn register_circuit_hits_on_identical_structure() {
        let reg = CircuitRegistry::new();
        let a = reg.register_circuit("c17", Circuit::c17());
        let b = reg.register_circuit("c17", Circuit::c17());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().compiles, 1);
    }

    #[test]
    fn compiled_artifact_agrees_with_direct_pipeline() {
        let reg = CircuitRegistry::new();
        let compiled = reg.register_bench("c17", C17_BENCH).expect("parses");
        let direct = parse_bench(C17_BENCH).expect("parses");
        assert_eq!(compiled.faults(), &enumerate_stuck_at(&direct)[..]);
        let collapsed = collapse(&direct, compiled.faults());
        assert_eq!(
            compiled.collapsed().representatives,
            collapsed.representatives
        );
        assert_eq!(compiled.collapsed().class_of, collapsed.class_of);
        assert_eq!(compiled.graph().gate_count(), direct.gates().len());
    }

    #[test]
    fn insert_seeds_without_touching_counters() {
        let reg = CircuitRegistry::new();
        let artifact = Arc::new(compile_circuit("c17", Circuit::c17()));
        let key = artifact.key();
        let seeded = reg.insert(Arc::clone(&artifact));
        assert!(Arc::ptr_eq(&seeded, &artifact));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (0, 0, 0));
        assert_eq!(stats.entries, 1);
        let fetched = reg.get(key).expect("seeded entry present");
        assert!(Arc::ptr_eq(&fetched, &artifact));
        // Registering the same structure now hits the seeded entry
        // without compiling anything.
        let hit = reg.register_circuit("c17", Circuit::c17());
        assert!(Arc::ptr_eq(&hit, &artifact));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.compiles), (1, 0));
    }
}

//! The compiled-circuit registry: parse → map → collapse → graph-build
//! once, serve forever — inside a byte-accounted capacity.
//!
//! A [`CompiledCircuit`] bundles everything the engines derive from a
//! circuit before the first pattern is simulated: the mapped [`Circuit`]
//! itself, the enumerated stuck-at universe, its structural collapse, and
//! the levelized [`SimGraph`] precompute. [`compile_circuit`] is the
//! **single implementation of that pipeline** in the workspace — the
//! experiment drivers, the examples, the job engine, and the snapshot
//! restore path all route through it, so the compile path cannot fork.
//!
//! [`CircuitRegistry`] caches compiled artifacts keyed by a content hash
//! of the source (FNV-1a over the `.bench` text for
//! [`register_bench`](CircuitRegistry::register_bench), over the
//! canonical snapshot encoding for
//! [`register_circuit`](CircuitRegistry::register_circuit)). The hit
//! path performs the hash, a map lookup, and an LRU touch — no parse, no
//! fault enumeration, no collapse, no graph build — which the
//! [`RegistryStats::compiles`] counter makes assertable. Concurrent
//! registrations of the same source are serialized per key: exactly one
//! caller compiles while the rest block on the per-key slot and then
//! share the same `Arc`.
//!
//! ## Bounded capacity
//!
//! A long-lived service cannot let its cache grow without bound, so the
//! registry is **byte-accounted**: every finished artifact is charged
//! its [`CompiledCircuit::approx_bytes`] estimate against an optional
//! capacity ([`CircuitRegistry::with_capacity_bytes`];
//! [`CircuitRegistry::new`] is unbounded). Admitting an artifact that
//! pushes the account past capacity evicts least-recently-used entries
//! until it fits; an artifact **alone** larger than the whole capacity
//! is refused with the typed backpressure error
//! [`RegistryError::Oversized`] instead of flushing the cache for a
//! single tenant. Eviction removes the cache entry only — every `Arc`
//! already handed out (including ones held by in-flight jobs) remains
//! valid until its holders drop it; an evicted source simply recompiles
//! on next registration.
//!
//! ## Fault isolation
//!
//! The compile path runs under `catch_unwind`: a panic inside parse /
//! enumerate / collapse / graph build (including one injected through
//! the [`registry.compile`](crate::failpoint) fail point) becomes a
//! typed [`RegistryError::CompilePanicked`], the per-key slot stays
//! empty and **retryable**, and no lock is left poisoned (all registry
//! locks recover from poisoning).

use crate::failpoint;
use crate::snapshot::Snapshot;
use sinw_atpg::collapse::{collapse, CollapsedFaults};
use sinw_atpg::fault_list::{enumerate_stuck_at, StuckAtFault};
use sinw_atpg::graph::SimGraph;
use sinw_switch::gate::{Circuit, SignalId};
use sinw_switch::iscas::{parse_bench, BenchParseError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// FNV-1a 64 content hash with a one-byte domain tag, so `.bench` text
/// and canonical circuit bytes can never alias onto the same key.
fn fnv1a(domain: u8, bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ u64::from(domain);
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Key domain for `.bench` source text.
const DOMAIN_BENCH: u8 = 0xB5;
/// Key domain for canonical circuit bytes (generated circuits, snapshots).
const DOMAIN_CANONICAL: u8 = 0xC4;

/// Everything the engines derive from a circuit before simulating the
/// first pattern, compiled once and shared immutably.
#[derive(Debug)]
pub struct CompiledCircuit {
    name: String,
    key: u64,
    circuit: Circuit,
    faults: Vec<StuckAtFault>,
    collapsed: CollapsedFaults,
    graph: SimGraph,
}

impl CompiledCircuit {
    /// Human-readable circuit name (registry label, not part of the key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content-hash key this artifact is registered under.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The mapped gate-level circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The full enumerated single-stuck-at universe.
    #[must_use]
    pub fn faults(&self) -> &[StuckAtFault] {
        &self.faults
    }

    /// Structural equivalence collapse of [`faults`](Self::faults); its
    /// `representatives` are the service's working fault list.
    #[must_use]
    pub fn collapsed(&self) -> &CollapsedFaults {
        &self.collapsed
    }

    /// The levelized simulation-graph precompute, built once here and
    /// reused by every `*_with_graph` engine call.
    #[must_use]
    pub fn graph(&self) -> &SimGraph {
        &self.graph
    }

    /// Deterministic estimate of this artifact's resident size in
    /// bytes — the charge the registry's capacity accounting uses. An
    /// estimate (container headers and allocator slack are approximated
    /// with flat per-element constants), but a *pure function of the
    /// artifact*, so `stats().bytes` always equals the sum over the
    /// current entries.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let c = &self.circuit;
        let mut bytes = size_of::<Self>() + self.name.len();
        // Signal table: id/driver bookkeeping plus the owned name.
        for s in 0..c.signal_count() {
            bytes += 32 + c.signal_name(SignalId(s)).len();
        }
        // Gate table: kind + inputs + owned instance name, plus the
        // incrementally maintained fanout adjacency (one entry per pin).
        for gate in c.gates() {
            bytes += 48 + gate.name.len() + gate.inputs.len() * (size_of::<SignalId>() + 16);
        }
        bytes += self.faults.len() * size_of::<StuckAtFault>();
        bytes += self.collapsed.representatives.len() * size_of::<StuckAtFault>();
        bytes += self.collapsed.class_of.len() * size_of::<usize>();
        // SimGraph: structure-of-arrays gate list, consumer CSR, level
        // buckets, PO-reachability masks — all linear in gates + pins.
        bytes += c.gates().len() * 56 + c.signal_count() * 24;
        bytes
    }

    /// Snapshot this artifact for a `.sinw` file (circuit + universe +
    /// collapse; the graph is derived and cheap, so it is rebuilt on
    /// restore rather than serialized).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            name: self.name.clone(),
            circuit: self.circuit.clone(),
            faults: self.faults.clone(),
            collapsed: Some(self.collapsed.clone()),
            dictionary: None,
        }
    }

    /// Restore an artifact from a decoded [`Snapshot`], reusing the
    /// stored universe and collapse when present (the restart fast path)
    /// and recompiling the missing pieces through [`compile_circuit`]
    /// otherwise. The graph precompute is always rebuilt — it is derived
    /// state the snapshot format deliberately does not carry.
    #[must_use]
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        let Snapshot {
            name,
            circuit,
            faults,
            collapsed,
            ..
        } = snapshot;
        if faults.is_empty() || collapsed.is_none() {
            return compile_circuit(&name, circuit);
        }
        let key = canonical_key(&circuit);
        let collapsed = collapsed.expect("checked above");
        let graph = SimGraph::build(&circuit);
        CompiledCircuit {
            name,
            key,
            circuit,
            faults,
            collapsed,
            graph,
        }
    }
}

/// Content key of a circuit with no source text: FNV-1a over its
/// canonical snapshot encoding. Also the key the
/// [`SnapshotStore`](crate::store::SnapshotStore) names its files by.
pub(crate) fn canonical_key(circuit: &Circuit) -> u64 {
    fnv1a(
        DOMAIN_CANONICAL,
        &crate::snapshot::canonical_circuit_bytes(circuit),
    )
}

/// The one compile-path implementation: enumerate the stuck-at universe,
/// collapse it, and build the [`SimGraph`] precompute for an
/// already-mapped circuit. Every driver that needs the compiled pipeline
/// — registry misses, snapshot restores, the experiment drivers, the
/// examples — calls this (or [`CircuitRegistry::register_bench`], which
/// parses and then calls this).
#[must_use]
pub fn compile_circuit(name: &str, circuit: Circuit) -> CompiledCircuit {
    let key = canonical_key(&circuit);
    let faults = enumerate_stuck_at(&circuit);
    let collapsed = collapse(&circuit, &faults);
    let graph = SimGraph::build(&circuit);
    CompiledCircuit {
        name: name.to_string(),
        key,
        circuit,
        faults,
        collapsed,
        graph,
    }
}

/// Typed registration failure. The per-key slot is left empty in every
/// case, so a later registration of the same source retries cleanly.
#[derive(Debug)]
pub enum RegistryError {
    /// The `.bench` source failed to parse.
    Parse(BenchParseError),
    /// The compile pipeline panicked (isolated by `catch_unwind`; the
    /// registry stays serviceable and the slot retryable).
    CompilePanicked {
        /// Registry label of the offending source.
        name: String,
        /// The panic message.
        reason: String,
    },
    /// The compile pipeline failed on an injected transient fault (the
    /// `registry.compile` fail point); retrying may succeed.
    CompileFailed {
        /// Registry label of the offending source.
        name: String,
        /// What was injected.
        reason: String,
    },
    /// Backpressure: the artifact alone is larger than the registry's
    /// whole capacity, so caching it would flush every other tenant.
    /// Compile the circuit directly ([`compile_circuit`]) if it is
    /// genuinely needed.
    Oversized {
        /// Registry label of the offending source.
        name: String,
        /// The artifact's byte estimate.
        bytes: usize,
        /// The registry's configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Parse(e) => write!(f, "bench parse failed: {e}"),
            RegistryError::CompilePanicked { name, reason } => {
                write!(f, "compile of '{name}' panicked: {reason}")
            }
            RegistryError::CompileFailed { name, reason } => {
                write!(f, "compile of '{name}' failed: {reason}")
            }
            RegistryError::Oversized {
                name,
                bytes,
                capacity,
            } => write!(
                f,
                "artifact '{name}' ({bytes} B) exceeds the registry capacity ({capacity} B)"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<BenchParseError> for RegistryError {
    fn from(e: BenchParseError) -> Self {
        RegistryError::Parse(e)
    }
}

/// Registry throughput counters (monotonic, over the registry's
/// lifetime) plus the current entry/byte account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Registrations that found a finished artifact (no work done).
    pub hits: u64,
    /// Registrations that found no finished artifact (the first of a
    /// concurrent burst compiles; the rest block on the slot and are
    /// counted as hits once it fills).
    pub misses: u64,
    /// Compile-pipeline runs actually performed. With `N` threads
    /// registering the same source concurrently this stays exactly 1.
    pub compiles: u64,
    /// Entries evicted by the byte-capacity LRU policy.
    pub evictions: u64,
    /// Distinct sources currently registered.
    pub entries: usize,
    /// Sum of [`CompiledCircuit::approx_bytes`] over the current entries.
    pub bytes: usize,
    /// The configured capacity (`usize::MAX` when unbounded).
    pub capacity: usize,
}

/// One registry slot: the per-key mutex serializes compilation so a
/// concurrent burst of registrations runs the pipeline exactly once.
type Slot = Arc<Mutex<Option<Arc<CompiledCircuit>>>>;

/// Byte account of one finished entry.
struct EntryMeta {
    bytes: usize,
    last_used: u64,
}

/// Map + LRU state under one lock: the slot map, the per-entry byte
/// account, the LRU clock, and the running total.
#[derive(Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    meta: HashMap<u64, EntryMeta>,
    tick: u64,
    total_bytes: usize,
}

/// A concurrent, byte-bounded LRU cache of compiled circuits keyed by
/// content hash. See the [module docs](self) for the capacity and
/// fault-isolation contracts.
pub struct CircuitRegistry {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CircuitRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CircuitRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CircuitRegistry")
            .field("stats", &stats)
            .finish()
    }
}

/// Poison-tolerant lock: a panic elsewhere (including an injected one)
/// must not cascade into every later registration.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a `catch_unwind` payload as a message.
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

impl CircuitRegistry {
    /// An empty, **unbounded** registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity_bytes(usize::MAX)
    }

    /// An empty registry evicting least-recently-used entries once the
    /// byte account exceeds `capacity`.
    #[must_use]
    pub fn with_capacity_bytes(capacity: usize) -> Self {
        CircuitRegistry {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte capacity (`usize::MAX` when unbounded).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// The per-key slot, created empty on first sight. The global map
    /// lock is held only for the lookup, never during compilation.
    fn slot(&self, key: u64) -> Slot {
        lock_clean(&self.inner)
            .slots
            .entry(key)
            .or_default()
            .clone()
    }

    /// Bump `key`'s LRU clock (no-op for keys evicted in the meantime).
    fn touch(&self, key: u64) {
        let mut inner = lock_clean(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(meta) = inner.meta.get_mut(&key) {
            meta.last_used = tick;
        }
    }

    /// Charge a freshly finished artifact to the byte account and evict
    /// least-recently-used entries until the account fits the capacity
    /// again. The just-admitted key carries the youngest clock, so it is
    /// never its own victim (oversized artifacts were refused earlier).
    fn admit(&self, key: u64, bytes: usize) {
        let mut inner = lock_clean(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.meta.insert(
            key,
            EntryMeta {
                bytes,
                last_used: tick,
            },
        );
        inner.total_bytes += bytes;
        while inner.total_bytes > self.capacity {
            let victim = inner
                .meta
                .iter()
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty account while over capacity");
            let meta = inner.meta.remove(&victim).expect("victim present");
            inner.total_bytes -= meta.bytes;
            inner.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Hit-or-compile on a slot. Exactly one caller runs `build` per
    /// empty slot; concurrent callers block on the slot mutex and share
    /// the artifact it installs. The build runs under `catch_unwind`, so
    /// a panicking compile becomes a typed error and the slot stays
    /// retryable.
    fn lookup_or_compile(
        &self,
        name: &str,
        key: u64,
        build: impl FnOnce() -> Result<CompiledCircuit, RegistryError>,
    ) -> Result<Arc<CompiledCircuit>, RegistryError> {
        let slot = self.slot(key);
        let mut guard = lock_clean(&slot);
        if let Some(artifact) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            let artifact = Arc::clone(artifact);
            drop(guard);
            self.touch(key);
            return Ok(artifact);
        }
        self.misses.fetch_add(1, Ordering::SeqCst);
        self.compiles.fetch_add(1, Ordering::SeqCst);
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<CompiledCircuit, RegistryError> {
                failpoint::hit("registry.compile").map_err(|e| RegistryError::CompileFailed {
                    name: name.to_string(),
                    reason: e.to_string(),
                })?;
                build()
            },
        ));
        let compiled = match built {
            Err(payload) => {
                return Err(RegistryError::CompilePanicked {
                    name: name.to_string(),
                    reason: panic_reason(payload.as_ref()),
                })
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(c)) => c,
        };
        let bytes = compiled.approx_bytes();
        if bytes > self.capacity {
            return Err(RegistryError::Oversized {
                name: name.to_string(),
                bytes,
                capacity: self.capacity,
            });
        }
        let artifact = Arc::new(compiled);
        *guard = Some(Arc::clone(&artifact));
        drop(guard);
        self.admit(key, bytes);
        Ok(artifact)
    }

    /// Register a `.bench` source. The key is a hash of the raw text, so
    /// a hit skips parsing, mapping, fault enumeration, collapsing, and
    /// graph building entirely; a miss parses and runs
    /// [`compile_circuit`] while holding the per-key slot.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Parse`] when a miss's source is invalid,
    /// [`RegistryError::CompilePanicked`] /
    /// [`RegistryError::CompileFailed`] under fault injection,
    /// [`RegistryError::Oversized`] as capacity backpressure — in every
    /// case the slot stays empty, so a later registration retries.
    pub fn register_bench(
        &self,
        name: &str,
        source: &str,
    ) -> Result<Arc<CompiledCircuit>, RegistryError> {
        let key = fnv1a(DOMAIN_BENCH, source.as_bytes());
        self.lookup_or_compile(name, key, || {
            let circuit = parse_bench(source)?;
            let mut compiled = compile_circuit(name, circuit);
            compiled.key = key;
            Ok(compiled)
        })
    }

    /// Register an already-built circuit (a parametric generator, a
    /// decoded snapshot). The key is a hash of the canonical circuit
    /// encoding; a hit skips fault enumeration, collapsing, and graph
    /// building.
    ///
    /// # Errors
    ///
    /// As [`register_bench`](Self::register_bench), minus the parse
    /// failure mode.
    pub fn register_circuit(
        &self,
        name: &str,
        circuit: Circuit,
    ) -> Result<Arc<CompiledCircuit>, RegistryError> {
        let key = canonical_key(&circuit);
        self.lookup_or_compile(name, key, || Ok(compile_circuit(name, circuit)))
    }

    /// Seed the registry with a pre-compiled artifact (the snapshot
    /// restore path) under its own key. Counts as neither hit, miss, nor
    /// compile; an existing finished entry wins and is returned instead.
    /// An artifact larger than the whole capacity is returned uncached.
    pub fn insert(&self, artifact: Arc<CompiledCircuit>) -> Arc<CompiledCircuit> {
        let bytes = artifact.approx_bytes();
        if bytes > self.capacity {
            return artifact;
        }
        let key = artifact.key();
        let slot = self.slot(key);
        let mut guard = lock_clean(&slot);
        match guard.as_ref() {
            Some(existing) => Arc::clone(existing),
            None => {
                *guard = Some(Arc::clone(&artifact));
                drop(guard);
                self.admit(key, bytes);
                artifact
            }
        }
    }

    /// The finished artifact under `key`, if any. Touches the LRU clock
    /// but not the hit/miss counters, and never waits on an in-flight
    /// compile.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<CompiledCircuit>> {
        let slot = {
            let inner = lock_clean(&self.inner);
            inner.slots.get(&key)?.clone()
        };
        let artifact = {
            let guard = slot.try_lock().ok()?;
            guard.as_ref().map(Arc::clone)?
        };
        self.touch(key);
        Some(artifact)
    }

    /// Current counters and the byte account. `entries`/`bytes` cover
    /// finished artifacts only (a slot whose compile failed or is in
    /// flight is not an entry).
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let (entries, bytes) = {
            let inner = lock_clean(&self.inner);
            (inner.meta.len(), inner.total_bytes)
        };
        RegistryStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            compiles: self.compiles.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
            entries,
            bytes,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinw_switch::iscas::{C17_BENCH, CSA16_BENCH};

    #[test]
    fn hit_returns_the_same_arc_and_compiles_once() {
        let reg = CircuitRegistry::new();
        let a = reg.register_bench("c17", C17_BENCH).expect("c17 parses");
        let b = reg.register_bench("c17", C17_BENCH).expect("c17 parses");
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, a.approx_bytes());
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn distinct_sources_get_distinct_entries() {
        let reg = CircuitRegistry::new();
        let a = reg.register_bench("c17", C17_BENCH).expect("parses");
        let b = reg.register_bench("csa16", CSA16_BENCH).expect("parses");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().entries, 2);
        assert_eq!(reg.stats().compiles, 2);
        assert_eq!(reg.stats().bytes, a.approx_bytes() + b.approx_bytes());
    }

    #[test]
    fn parse_errors_propagate_and_leave_the_slot_retryable() {
        let reg = CircuitRegistry::new();
        let bad = "INPUT(a)\nb = FROB(a)\nOUTPUT(b)\n";
        assert!(matches!(
            reg.register_bench("bad", bad),
            Err(RegistryError::Parse(_))
        ));
        assert_eq!(reg.stats().entries, 0);
        // A later valid registration under a different key still works,
        // and retrying the bad source fails again rather than caching.
        assert!(reg.register_bench("bad", bad).is_err());
        assert!(reg.register_bench("c17", C17_BENCH).is_ok());
    }

    #[test]
    fn register_circuit_hits_on_identical_structure() {
        let reg = CircuitRegistry::new();
        let a = reg.register_circuit("c17", Circuit::c17()).expect("fits");
        let b = reg.register_circuit("c17", Circuit::c17()).expect("fits");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().compiles, 1);
    }

    #[test]
    fn compiled_artifact_agrees_with_direct_pipeline() {
        let reg = CircuitRegistry::new();
        let compiled = reg.register_bench("c17", C17_BENCH).expect("parses");
        let direct = parse_bench(C17_BENCH).expect("parses");
        assert_eq!(compiled.faults(), &enumerate_stuck_at(&direct)[..]);
        let collapsed = collapse(&direct, compiled.faults());
        assert_eq!(
            compiled.collapsed().representatives,
            collapsed.representatives
        );
        assert_eq!(compiled.collapsed().class_of, collapsed.class_of);
        assert_eq!(compiled.graph().gate_count(), direct.gates().len());
    }

    #[test]
    fn insert_seeds_without_touching_counters() {
        let reg = CircuitRegistry::new();
        let artifact = Arc::new(compile_circuit("c17", Circuit::c17()));
        let key = artifact.key();
        let seeded = reg.insert(Arc::clone(&artifact));
        assert!(Arc::ptr_eq(&seeded, &artifact));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (0, 0, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, artifact.approx_bytes());
        let fetched = reg.get(key).expect("seeded entry present");
        assert!(Arc::ptr_eq(&fetched, &artifact));
        // Registering the same structure now hits the seeded entry
        // without compiling anything.
        let hit = reg.register_circuit("c17", Circuit::c17()).expect("fits");
        assert!(Arc::ptr_eq(&hit, &artifact));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.compiles), (1, 0));
    }

    #[test]
    fn lru_eviction_keeps_the_account_under_capacity() {
        let probe = compile_circuit("c17", Circuit::c17());
        let one = probe.approx_bytes();
        // Room for the c17 artifact and the csa16 artifact is far more
        // than 2x c17; cap just above one c17 so a second *distinct*
        // artifact must evict the first.
        let reg = CircuitRegistry::with_capacity_bytes(one + one / 2);
        let a = reg.register_circuit("c17", Circuit::c17()).expect("fits");
        let b = reg.register_bench("csa16", CSA16_BENCH);
        match b {
            Ok(b) => {
                // csa16 fit under the cap only by evicting c17.
                let stats = reg.stats();
                assert_eq!(stats.evictions, 1);
                assert_eq!(stats.entries, 1);
                assert_eq!(stats.bytes, b.approx_bytes());
                assert!(reg.get(a.key()).is_none(), "c17 was evicted");
            }
            Err(RegistryError::Oversized { .. }) => {
                // csa16 alone exceeds 1.5x c17: backpressure, cache intact.
                let stats = reg.stats();
                assert_eq!(stats.evictions, 0);
                assert_eq!(stats.entries, 1);
                assert!(reg.get(a.key()).is_some(), "c17 survives backpressure");
            }
            Err(other) => panic!("unexpected error {other}"),
        }
        // The evicted (or refused) Arc stays fully usable.
        assert_eq!(a.graph().gate_count(), a.circuit().gates().len());
        // Re-registering the evicted source recompiles cleanly.
        let again = reg.register_circuit("c17", Circuit::c17());
        assert!(again.is_ok() || matches!(again, Err(RegistryError::Oversized { .. })));
    }

    #[test]
    fn oversized_artifact_is_refused_not_cached() {
        let reg = CircuitRegistry::with_capacity_bytes(16);
        match reg.register_circuit("c17", Circuit::c17()) {
            Err(RegistryError::Oversized {
                bytes, capacity, ..
            }) => {
                assert!(bytes > capacity);
            }
            other => panic!("expected Oversized, got {:?}", other.map(|_| ())),
        }
        let stats = reg.stats();
        assert_eq!((stats.entries, stats.bytes), (0, 0));
        // The compile still ran (and is counted) — only caching was
        // refused.
        assert_eq!(stats.compiles, 1);
    }
}

//! Crash-safe snapshot persistence: a directory of `.sinw` files with
//! atomic writes, boot-time recovery, and registry warm-start.
//!
//! A [`SnapshotStore`] owns one directory. Every snapshot is stored as
//! `{key:016x}.sinw`, named by the circuit's canonical content key (the
//! same FNV-1a key the [registry](crate::registry) caches under), so the
//! store is content-addressed: saving the same circuit twice overwrites
//! one file, and a file's name alone says which registry entry it can
//! warm-start.
//!
//! ## Durability protocol
//!
//! [`SnapshotStore::save`] goes through
//! [`Snapshot::write_file`]'s atomic path: encode → write to a `.tmp`
//! sibling → `fsync` → `rename` over the final name → directory
//! `fsync`. A crash (or an injected `snapshot.write.*` fault) at any
//! point leaves either the old file, the new file, or harmless `.tmp`
//! debris — never a half-written `.sinw`.
//!
//! ## Recovery protocol
//!
//! [`SnapshotStore::open`] is the boot-time recovery scan. In one
//! deterministic (name-sorted) pass over the directory it:
//!
//! 1. **sweeps** `.tmp` crash debris left by interrupted writes,
//! 2. **validates** every `.sinw` file end-to-end (header, checksum,
//!    full decode),
//! 3. **quarantines** anything unreadable or corrupt into a
//!    `quarantine/` subdirectory — recorded in the typed
//!    [`RecoveryReport`], never a panic, and never fatal to the files
//!    that did survive,
//! 4. **indexes** the valid snapshots by canonical key.
//!
//! [`SnapshotStore::warm_start`] then seeds a [`CircuitRegistry`] from
//! the index without a single compile: each snapshot restores through
//! [`CompiledCircuit::from_snapshot`] (stored universe + collapse, graph
//! rebuilt) and enters the registry via [`CircuitRegistry::insert`].
//!
//! The `store.scan.read` [fail point](crate::failpoint) injects read
//! faults into step 2, letting the chaos suites prove that a bad disk
//! sector degrades into a quarantine entry instead of a crash.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::failpoint;
use crate::registry::{canonical_key, CircuitRegistry, CompiledCircuit};
use crate::snapshot::{io_error, Snapshot, SnapshotError};

/// Poison-tolerant lock (a store is often shared with threads running
/// under fault injection).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One file set aside by the recovery scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFile {
    /// File name (not path) as found in the store directory.
    pub file: String,
    /// Why it was rejected (decode / checksum / I/O error text).
    pub reason: String,
    /// Where it was moved, relative to the store directory; `None` if
    /// even the quarantine move failed and the file was left in place.
    pub moved_to: Option<String>,
}

/// What [`SnapshotStore::open`]'s recovery scan found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Canonical keys of the valid snapshots, ascending.
    pub loaded: Vec<u64>,
    /// Files set aside as unreadable or corrupt.
    pub quarantined: Vec<QuarantinedFile>,
    /// `.tmp` crash-debris files swept away.
    pub swept_temps: usize,
}

/// What [`SnapshotStore::warm_start`] did to the registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartReport {
    /// Snapshots restored and installed as fresh registry entries.
    pub installed: usize,
    /// Snapshots whose key already had a finished registry entry.
    pub already_present: usize,
}

/// A content-addressed directory of `.sinw` snapshots with crash-safe
/// writes and a quarantining recovery scan. See the [module
/// docs](self) for the durability and recovery protocols.
pub struct SnapshotStore {
    dir: PathBuf,
    /// Canonical key → file path, for every snapshot that passed the
    /// recovery scan or was saved through this handle.
    index: Mutex<BTreeMap<u64, PathBuf>>,
}

/// Name of the subdirectory corrupt files are moved into.
const QUARANTINE_DIR: &str = "quarantine";

fn is_sinw(name: &str) -> bool {
    name.ends_with(".sinw")
}

fn is_temp_debris(name: &str) -> bool {
    name.ends_with(".tmp")
}

impl SnapshotStore {
    /// Open (creating if needed) the store at `dir` and run the
    /// boot-time recovery scan described in the [module docs](self).
    ///
    /// Corrupt or unreadable snapshot files are **not** errors — they
    /// are quarantined and reported. The scan itself walks the directory
    /// in sorted name order, so the report is deterministic for a given
    /// directory state.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] only for directory-level failures: the
    /// store directory cannot be created or listed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(Self, RecoveryReport), SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_error(&dir, &e))?;

        let mut names: Vec<String> = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| io_error(&dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&dir, &e))?;
            if entry.path().is_dir() {
                continue;
            }
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        names.sort_unstable();

        let mut report = RecoveryReport::default();
        let mut index = BTreeMap::new();
        for name in names {
            let path = dir.join(&name);
            if is_temp_debris(&name) {
                // Crash debris from an interrupted atomic write: the
                // rename never happened, so nothing references it.
                let _ = std::fs::remove_file(&path);
                report.swept_temps += 1;
                continue;
            }
            if !is_sinw(&name) {
                continue;
            }
            let outcome = failpoint::hit("store.scan.read")
                .map_err(|e| io_error(&path, &std::io::Error::from(e)))
                .and_then(|()| Snapshot::read_file(&path));
            match outcome {
                Ok(snapshot) => {
                    let key = canonical_key(&snapshot.circuit);
                    index.insert(key, path);
                }
                Err(e) => {
                    report
                        .quarantined
                        .push(quarantine(&dir, &name, &path, &e.to_string()));
                }
            }
        }
        report.loaded = index.keys().copied().collect();
        let store = SnapshotStore {
            dir,
            index: Mutex::new(index),
        };
        Ok((store, report))
    }

    /// The directory this store owns.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical keys currently indexed, ascending.
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        lock_clean(&self.index).keys().copied().collect()
    }

    /// Number of indexed snapshots.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_clean(&self.index).len()
    }

    /// Whether the store indexes no snapshots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persist `snapshot` atomically as `{key:016x}.sinw` and index it.
    /// Returns the canonical key the file is addressed by. Saving a
    /// snapshot of an already-stored circuit atomically replaces the
    /// previous file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if any step of the atomic write protocol
    /// fails (including injected `snapshot.write.*` faults); the
    /// previously stored file, if any, survives untouched.
    pub fn save(&self, snapshot: &Snapshot) -> Result<u64, SnapshotError> {
        let key = canonical_key(&snapshot.circuit);
        let path = self.dir.join(format!("{key:016x}.sinw"));
        snapshot.write_file(&path)?;
        lock_clean(&self.index).insert(key, path);
        Ok(key)
    }

    /// Snapshot a compiled artifact and [`save`](Self::save) it.
    ///
    /// # Errors
    ///
    /// As [`save`](Self::save).
    pub fn save_artifact(&self, artifact: &CompiledCircuit) -> Result<u64, SnapshotError> {
        self.save(&artifact.snapshot())
    }

    /// Read back the snapshot stored under `key`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotFound`] if the key is not indexed (or the
    /// file vanished since the scan); decode/I/O errors pass through
    /// typed.
    pub fn load(&self, key: u64) -> Result<Snapshot, SnapshotError> {
        let path = {
            let index = lock_clean(&self.index);
            match index.get(&key) {
                Some(p) => p.clone(),
                None => {
                    return Err(SnapshotError::NotFound {
                        path: self
                            .dir
                            .join(format!("{key:016x}.sinw"))
                            .display()
                            .to_string(),
                    })
                }
            }
        };
        Snapshot::read_file(path)
    }

    /// Seed `registry` with every indexed snapshot, restoring each
    /// through [`CompiledCircuit::from_snapshot`] (stored universe +
    /// collapse; zero compiles when the snapshots carry both) and
    /// installing it with [`CircuitRegistry::insert`]. Keys that already
    /// have a finished registry entry are counted, not replaced.
    ///
    /// # Errors
    ///
    /// Propagates the first load failure. The registry keeps whatever
    /// was installed before the failure — warm-start is incremental, not
    /// transactional.
    pub fn warm_start(&self, registry: &CircuitRegistry) -> Result<WarmStartReport, SnapshotError> {
        let keys = self.keys();
        let mut report = WarmStartReport::default();
        for key in keys {
            if registry.get(key).is_some() {
                report.already_present += 1;
                continue;
            }
            let snapshot = self.load(key)?;
            let artifact = CompiledCircuit::from_snapshot(snapshot);
            registry.insert(std::sync::Arc::new(artifact));
            report.installed += 1;
        }
        Ok(report)
    }
}

/// Move a rejected file into the quarantine subdirectory, creating it on
/// demand. Failure to move is itself non-fatal: the file stays put and
/// the report says so.
fn quarantine(dir: &Path, name: &str, path: &Path, reason: &str) -> QuarantinedFile {
    let qdir = dir.join(QUARANTINE_DIR);
    let moved_to = std::fs::create_dir_all(&qdir)
        .and_then(|()| {
            let dest = qdir.join(name);
            std::fs::rename(path, &dest).map(|()| format!("{QUARANTINE_DIR}/{name}"))
        })
        .ok();
    QuarantinedFile {
        file: name.to_string(),
        reason: reason.to_string(),
        moved_to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::compile_circuit;
    use sinw_switch::gate::Circuit;

    /// Fresh scratch directory per test, cleaned before use so reruns
    /// are deterministic.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sinw_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_reopen_round_trips_by_key() {
        let dir = scratch("roundtrip");
        let artifact = compile_circuit("c17", Circuit::c17());
        let key = {
            let (store, report) = SnapshotStore::open(&dir).expect("open empty");
            assert!(report.loaded.is_empty());
            store.save_artifact(&artifact).expect("save")
        };
        assert_eq!(key, artifact.key());
        let (store, report) = SnapshotStore::open(&dir).expect("reopen");
        assert_eq!(report.loaded, vec![key]);
        assert!(report.quarantined.is_empty());
        let snapshot = store.load(key).expect("load");
        let restored = CompiledCircuit::from_snapshot(snapshot);
        assert_eq!(restored.key(), artifact.key());
        assert_eq!(
            restored.collapsed().representatives,
            artifact.collapsed().representatives
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_quarantined_and_the_rest_survive() {
        let dir = scratch("quarantine");
        {
            let (store, _) = SnapshotStore::open(&dir).expect("open");
            store
                .save_artifact(&compile_circuit("c17", Circuit::c17()))
                .expect("save");
        }
        // Plant a corrupt snapshot beside the good one.
        std::fs::write(dir.join("deadbeefdeadbeef.sinw"), b"not a snapshot").expect("plant");
        let (store, report) = SnapshotStore::open(&dir).expect("reopen");
        assert_eq!(report.loaded.len(), 1, "the good file survives");
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.file, "deadbeefdeadbeef.sinw");
        assert!(!q.reason.is_empty());
        assert_eq!(
            q.moved_to.as_deref(),
            Some("quarantine/deadbeefdeadbeef.sinw")
        );
        assert!(dir.join("quarantine/deadbeefdeadbeef.sinw").exists());
        assert!(!dir.join("deadbeefdeadbeef.sinw").exists());
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_debris_is_swept_on_open() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("0123.sinw.42.tmp"), b"half-written").expect("plant tmp");
        let (store, report) = SnapshotStore::open(&dir).expect("open");
        assert_eq!(report.swept_temps, 1);
        assert!(!dir.join("0123.sinw.42.tmp").exists());
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_installs_without_a_single_compile() {
        let dir = scratch("warmstart");
        let artifact = compile_circuit("c17", Circuit::c17());
        {
            let (store, _) = SnapshotStore::open(&dir).expect("open");
            store.save_artifact(&artifact).expect("save");
        }
        let (store, _) = SnapshotStore::open(&dir).expect("reopen");
        let registry = CircuitRegistry::new();
        let report = store.warm_start(&registry).expect("warm start");
        assert_eq!(report.installed, 1);
        assert_eq!(report.already_present, 0);
        let stats = registry.stats();
        assert_eq!(stats.compiles, 0, "warm start must not compile");
        assert_eq!(stats.entries, 1);
        let served = registry.get(artifact.key()).expect("served from registry");
        assert_eq!(served.name(), "c17");
        // A second warm start is a no-op.
        let again = store.warm_start(&registry).expect("warm start again");
        assert_eq!(again.installed, 0);
        assert_eq!(again.already_present, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_of_unknown_key_is_not_found() {
        let dir = scratch("unknown");
        let (store, _) = SnapshotStore::open(&dir).expect("open");
        match store.load(0xABCD) {
            Err(SnapshotError::NotFound { path }) => assert!(path.contains("000000000000abcd")),
            other => panic!("expected NotFound, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resaving_the_same_circuit_overwrites_one_file() {
        let dir = scratch("overwrite");
        let artifact = compile_circuit("c17", Circuit::c17());
        let (store, _) = SnapshotStore::open(&dir).expect("open");
        let k1 = store.save_artifact(&artifact).expect("save 1");
        let k2 = store.save_artifact(&artifact).expect("save 2");
        assert_eq!(k1, k2);
        assert_eq!(store.len(), 1);
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("list")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .collect();
        assert_eq!(files.len(), 1, "one .sinw file, no debris");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

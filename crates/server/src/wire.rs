//! The `.sinw` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message on a service connection is one **frame** — a fixed
//! 24-byte header followed by a checksummed payload, in the same idiom
//! as the `.sinw` snapshot container header:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"SINP"` |
//! | 4      | 2    | protocol version (little-endian) |
//! | 6      | 2    | frame type (little-endian) |
//! | 8      | 8    | payload length (little-endian) |
//! | 16     | 8    | FNV-1a 64 checksum of the payload |
//!
//! Request frame types occupy `0x01..=0x7F`, response types
//! `0x80..=0xFF`; the concrete catalog lives in [`frame_type`]. All
//! multi-byte integers are little-endian. Patterns travel as one byte
//! per bit, strictly `0` or `1`.
//!
//! Decoding is **total**: any byte string — truncated, bit-flipped,
//! hostile lengths, fuzz soup — produces a typed [`WireError`], never a
//! panic and never an allocation the input's own length does not
//! justify. Payload lengths are capped *before* any allocation
//! ([`WireError::Oversized`]), every element count is bounds-checked
//! against the bytes that remain, and a payload that decodes but leaves
//! bytes unread is rejected ([`WireError::TrailingBytes`]).

use std::io::{Read, Write};

use sinw_atpg::faultsim::{FaultSimReport, SignatureMatrix};
use sinw_atpg::tpg::AtpgReport;

use crate::jobs::JobOutcome;

/// The four magic bytes every wire frame starts with (`.sinw`
/// **p**rotocol — one letter off the snapshot container's `SINW`).
pub const WIRE_MAGIC: [u8; 4] = *b"SINP";

/// The current protocol version.
pub const WIRE_VERSION: u16 = 1;

/// Frame header size in bytes.
pub const FRAME_HEADER_LEN: usize = 24;

/// Default cap on a single frame's payload (64 MiB) — the bound
/// [`read_frame`] enforces before allocating.
pub const DEFAULT_MAX_PAYLOAD: u64 = 64 * 1024 * 1024;

/// FNV-1a 64 over the payload — same checksum as the `.sinw` container.
#[must_use]
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in payload {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frame type codes. Requests are `0x01..=0x7F`, responses
/// `0x80..=0xFF`.
pub mod frame_type {
    /// Register a `.bench` source text (name + source).
    pub const REGISTER_BENCH: u16 = 0x01;
    /// Register a pre-compiled `.sinw` snapshot byte string.
    pub const REGISTER_SNAPSHOT: u16 = 0x02;
    /// Submit a job against a registered circuit key.
    pub const SUBMIT_JOB: u16 = 0x03;
    /// Poll one job's progress counters.
    pub const JOB_PROGRESS: u16 = 0x04;
    /// Cooperatively cancel one job.
    pub const CANCEL_JOB: u16 = 0x05;
    /// Block on one job, streaming progress frames until the outcome.
    pub const AWAIT_JOB: u16 = 0x06;
    /// Fetch the `.sinw` snapshot bytes of a registered circuit.
    pub const FETCH_SNAPSHOT: u16 = 0x07;
    /// Fetch server-side registry/session counters.
    pub const STATS: u16 = 0x08;

    /// A circuit was registered (key + approximate resident bytes).
    pub const REGISTERED: u16 = 0x81;
    /// A job was accepted (job id).
    pub const SUBMITTED: u16 = 0x82;
    /// One progress observation of a job.
    pub const PROGRESS: u16 = 0x83;
    /// A job's terminal outcome.
    pub const OUTCOME: u16 = 0x84;
    /// Raw `.sinw` snapshot bytes.
    pub const SNAPSHOT_BYTES: u16 = 0x85;
    /// Server counters.
    pub const STATS_REPORT: u16 = 0x86;
    /// A typed error (code + message).
    pub const ERROR: u16 = 0x8F;
}

/// Typed wire failure. Every malformed frame or payload maps onto one
/// of these — wire decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream or buffer ended before a read completed.
    Truncated {
        /// Byte offset of the failed read (frame-relative).
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// The first four bytes are not [`WIRE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The version field names a protocol this build does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The frame type is not in the catalog (or a request arrived where
    /// a response was expected, and vice versa).
    UnknownFrameType {
        /// The type code found.
        found: u16,
    },
    /// The header declares a payload larger than the configured cap —
    /// rejected before any allocation.
    Oversized {
        /// Declared payload length.
        declared: u64,
        /// The configured cap.
        max: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The buffer holds more bytes than header + declared payload, or a
    /// payload decoded without consuming every byte.
    TrailingBytes {
        /// How many bytes too many.
        extra: usize,
    },
    /// A structurally invalid payload: bad tag, bad bool byte,
    /// non-UTF-8 string, inconsistent geometry.
    Malformed {
        /// Which field was being decoded.
        context: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The underlying socket failed (or an injected `net.*` fail point
    /// fired).
    Io {
        /// The OS error class.
        kind: std::io::ErrorKind,
        /// The OS error text.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "frame truncated at offset {offset}: needed {needed} bytes, {available} available"
            ),
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {WIRE_MAGIC:02x?})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found} (speaking {WIRE_VERSION})")
            }
            WireError::UnknownFrameType { found } => {
                write!(f, "unknown frame type {found:#06x}")
            }
            WireError::Oversized { declared, max } => {
                write!(f, "declared payload of {declared} bytes exceeds the {max}-byte cap")
            }
            WireError::ChecksumMismatch { declared, computed } => write!(
                f,
                "payload checksum mismatch: header declares {declared:#018x}, payload hashes to {computed:#018x}"
            ),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame payload")
            }
            WireError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            WireError::Io { kind, detail } => write!(f, "socket error ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// One observation from [`read_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, checksum-verified frame.
    Frame {
        /// The header's frame-type code (not yet validated against the
        /// catalog — [`Request::decode`] / [`Response::decode`] do
        /// that).
        frame_type: u16,
        /// The verified payload.
        payload: Vec<u8>,
    },
    /// The peer closed the connection cleanly (EOF on a frame
    /// boundary).
    Closed,
    /// A read timeout expired with no frame bytes pending — the
    /// connection is idle, not broken.
    Idle,
}

/// Encode one complete frame (header + payload) into a byte string.
#[must_use]
pub fn encode_frame(frame_type: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&frame_type.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a 24-byte header. Returns `(frame_type, payload_len,
/// declared_checksum)`.
fn parse_header(
    header: &[u8; FRAME_HEADER_LEN],
    max_payload: u64,
) -> Result<(u16, u64, u64), WireError> {
    if header[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let frame_type = u16::from_le_bytes([header[6], header[7]]);
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if len > max_payload {
        return Err(WireError::Oversized {
            declared: len,
            max: max_payload,
        });
    }
    let declared = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    Ok((frame_type, len, declared))
}

/// Read one frame from `r`, enforcing `max_payload` before allocating.
///
/// EOF on a frame boundary is [`FrameEvent::Closed`]; a read timeout
/// (`WouldBlock` / `TimedOut`) with no frame bytes pending is
/// [`FrameEvent::Idle`]; EOF or a timeout *mid-frame* is
/// [`WireError::Truncated`] — the stream can no longer be resynchronized.
///
/// # Errors
///
/// Any framing violation or socket failure maps to a typed
/// [`WireError`]; this function never panics.
pub fn read_frame(r: &mut impl Read, max_payload: u64) -> Result<FrameEvent, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameEvent::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    offset: filled,
                    needed: FRAME_HEADER_LEN - filled,
                    available: 0,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(FrameEvent::Idle)
            }
            Err(e) => return Err(e.into()),
        }
    }
    let (frame_type, declared_len, declared) = parse_header(&header, max_payload)?;
    let len = usize::try_from(declared_len).map_err(|_| WireError::Oversized {
        declared: declared_len,
        max: max_payload,
    })?;
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    offset: FRAME_HEADER_LEN + got,
                    needed: len - got,
                    available: 0,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A timeout mid-frame: the peer stalled with a frame half
                // sent. Treated as truncation — the stream cannot be
                // resynchronized from here.
                return Err(WireError::Truncated {
                    offset: FRAME_HEADER_LEN + got,
                    needed: len - got,
                    available: got,
                });
            }
            Err(e) => return Err(e.into()),
        }
    }
    let computed = checksum(&payload);
    if computed != declared {
        return Err(WireError::ChecksumMismatch { declared, computed });
    }
    Ok(FrameEvent::Frame {
        frame_type,
        payload,
    })
}

/// Decode exactly one frame from an in-memory buffer. Unlike
/// [`read_frame`] this rejects trailing bytes after the payload —
/// the adversarial battery's strict single-frame oracle.
///
/// # Errors
///
/// Any framing violation maps to a typed [`WireError`]; never panics.
pub fn decode_frame(bytes: &[u8], max_payload: u64) -> Result<(u16, Vec<u8>), WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated {
            offset: 0,
            needed: FRAME_HEADER_LEN,
            available: bytes.len(),
        });
    }
    let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().expect("checked");
    let (frame_type, declared_len, declared) = parse_header(&header, max_payload)?;
    let len = usize::try_from(declared_len).map_err(|_| WireError::Oversized {
        declared: declared_len,
        max: max_payload,
    })?;
    let body = &bytes[FRAME_HEADER_LEN..];
    if body.len() < len {
        return Err(WireError::Truncated {
            offset: FRAME_HEADER_LEN,
            needed: len,
            available: body.len(),
        });
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes {
            extra: body.len() - len,
        });
    }
    let computed = checksum(body);
    if computed != declared {
        return Err(WireError::ChecksumMismatch { declared, computed });
    }
    Ok((frame_type, body.to_vec()))
}

/// Write one frame to `w` (header + payload, then flush).
///
/// # Errors
///
/// Returns [`WireError::Io`] when the underlying write or flush fails.
pub fn write_frame(w: &mut impl Write, frame_type: u16, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_frame(frame_type, payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a count that the format addresses with `u32`.
///
/// Panics if `v` exceeds `u32::MAX` — beyond the protocol's addressing
/// and orders of magnitude beyond any workload in the workspace.
fn put_count(out: &mut Vec<u8>, v: usize, what: &str) {
    let v = u32::try_from(v).unwrap_or_else(|_| panic!("{what} count {v} exceeds u32"));
    put_u32(out, v);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_count(out, s.len(), "string byte");
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

/// Encode a uniform-width pattern set: count, width, then one byte per
/// bit. Panics if the rows are not all the same width (primary-input
/// patterns always are).
fn put_patterns(out: &mut Vec<u8>, patterns: &[Vec<bool>]) {
    let width = patterns.first().map_or(0, Vec::len);
    put_count(out, patterns.len(), "pattern");
    put_count(out, width, "pattern width");
    for p in patterns {
        assert_eq!(p.len(), width, "wire patterns must be uniform width");
        for &bit in p {
            put_bool(out, bit);
        }
    }
}

fn put_u64s(out: &mut Vec<u8>, values: &[u64], what: &str) {
    put_count(out, values.len(), what);
    for &v in values {
        put_u64(out, v);
    }
}

fn put_indices(out: &mut Vec<u8>, values: &[usize], what: &str) {
    put_count(out, values.len(), what);
    for &v in values {
        put_u64(out, v as u64);
    }
}

/// Bounds-checked payload cursor — the same total-decoding idiom as the
/// `.sinw` snapshot reader, producing [`WireError`]s.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed {
                context,
                detail: format!("bool byte must be 0 or 1, got {other}"),
            }),
        }
    }

    /// Read a `u32` element count and bounds-check `count *
    /// min_elem_bytes` against the remaining payload *before* the caller
    /// allocates anything — hostile counts die here.
    fn count(&mut self, context: &'static str, min_elem_bytes: usize) -> Result<usize, WireError> {
        let b = self.take(4)?;
        let n = u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize;
        let needed = n
            .checked_mul(min_elem_bytes.max(1))
            .ok_or_else(|| WireError::Malformed {
                context,
                detail: format!("count {n} overflows the address space"),
            })?;
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                offset: self.pos,
                needed,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    fn str(&mut self, context: &'static str) -> Result<String, WireError> {
        let n = self.count(context, 1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError::Malformed {
            context,
            detail: format!("invalid UTF-8: {e}"),
        })
    }

    fn u64s(&mut self, context: &'static str) -> Result<Vec<u64>, WireError> {
        let n = self.count(context, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn indices(&mut self, context: &'static str) -> Result<Vec<usize>, WireError> {
        let n = self.count(context, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()? as usize);
        }
        Ok(out)
    }

    fn patterns(&mut self, context: &'static str) -> Result<Vec<Vec<bool>>, WireError> {
        let n = self.count(context, 0)?;
        let width_bytes = self.take(4)?;
        let width = u32::from_le_bytes(width_bytes.try_into().expect("4 bytes")) as usize;
        let total = n.checked_mul(width).ok_or_else(|| WireError::Malformed {
            context,
            detail: format!("{n} patterns x {width} bits overflows"),
        })?;
        if total > self.remaining() {
            return Err(WireError::Truncated {
                offset: self.pos,
                needed: total,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(self.bool(context)?);
            }
            out.push(row);
        }
        Ok(out)
    }

    /// The rest of the payload as raw bytes (always consumes to the
    /// end).
    fn rest(&mut self) -> Vec<u8> {
        let out = self.bytes[self.pos..].to_vec();
        self.pos = self.bytes.len();
        out
    }

    /// Reject unread payload bytes.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A job specification as it travels on the wire: the circuit is named
/// by its registry **key**, patterns travel inline, and a timeout in
/// milliseconds (0 = none) becomes a server-side
/// [`JobPolicy`](crate::jobs::JobPolicy) deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireJob {
    /// PPSFP fault simulation against inline patterns.
    FaultSim {
        /// Registry key of the compiled circuit.
        key: u64,
        /// Patterns, one `bool` per primary input each.
        patterns: Vec<Vec<bool>>,
        /// Drop faults after first detection.
        drop_detected: bool,
        /// Intra-job worker threads (clamped server-side to ≥ 1).
        threads: u32,
        /// Deadline in milliseconds; 0 means none.
        timeout_ms: u64,
    },
    /// Full signature capture against inline patterns.
    Signatures {
        /// Registry key of the compiled circuit.
        key: u64,
        /// Patterns, one `bool` per primary input each.
        patterns: Vec<Vec<bool>>,
        /// Intra-job worker threads (clamped server-side to ≥ 1).
        threads: u32,
        /// Deadline in milliseconds; 0 means none.
        timeout_ms: u64,
    },
    /// A full ATPG campaign under the default configuration with the
    /// given seed.
    Campaign {
        /// Registry key of the compiled circuit.
        key: u64,
        /// Seed of the campaign's random phase.
        seed: u64,
        /// Deadline in milliseconds; 0 means none.
        timeout_ms: u64,
    },
}

const JOB_TAG_FAULTSIM: u8 = 1;
const JOB_TAG_SIGNATURES: u8 = 2;
const JOB_TAG_CAMPAIGN: u8 = 3;

impl WireJob {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WireJob::FaultSim {
                key,
                patterns,
                drop_detected,
                threads,
                timeout_ms,
            } => {
                out.push(JOB_TAG_FAULTSIM);
                put_u64(out, *key);
                put_bool(out, *drop_detected);
                put_u32(out, *threads);
                put_u64(out, *timeout_ms);
                put_patterns(out, patterns);
            }
            WireJob::Signatures {
                key,
                patterns,
                threads,
                timeout_ms,
            } => {
                out.push(JOB_TAG_SIGNATURES);
                put_u64(out, *key);
                put_u32(out, *threads);
                put_u64(out, *timeout_ms);
                put_patterns(out, patterns);
            }
            WireJob::Campaign {
                key,
                seed,
                timeout_ms,
            } => {
                out.push(JOB_TAG_CAMPAIGN);
                put_u64(out, *key);
                put_u64(out, *seed);
                put_u64(out, *timeout_ms);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            JOB_TAG_FAULTSIM => {
                let key = r.u64()?;
                let drop_detected = r.bool("job drop_detected")?;
                let threads = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
                let timeout_ms = r.u64()?;
                let patterns = r.patterns("job patterns")?;
                Ok(WireJob::FaultSim {
                    key,
                    patterns,
                    drop_detected,
                    threads,
                    timeout_ms,
                })
            }
            JOB_TAG_SIGNATURES => {
                let key = r.u64()?;
                let threads = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
                let timeout_ms = r.u64()?;
                let patterns = r.patterns("job patterns")?;
                Ok(WireJob::Signatures {
                    key,
                    patterns,
                    threads,
                    timeout_ms,
                })
            }
            JOB_TAG_CAMPAIGN => {
                let key = r.u64()?;
                let seed = r.u64()?;
                let timeout_ms = r.u64()?;
                Ok(WireJob::Campaign {
                    key,
                    seed,
                    timeout_ms,
                })
            }
            other => Err(WireError::Malformed {
                context: "job tag",
                detail: format!("unknown job tag {other}"),
            }),
        }
    }
}

/// A client request, one frame each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register a `.bench` source text.
    RegisterBench {
        /// Circuit label.
        name: String,
        /// The `.bench` source.
        source: String,
    },
    /// Register a pre-compiled `.sinw` snapshot.
    RegisterSnapshot {
        /// The raw `.sinw` container bytes.
        bytes: Vec<u8>,
    },
    /// Submit a job.
    SubmitJob(WireJob),
    /// Poll a job's progress counters.
    JobProgress {
        /// Id from [`Response::Submitted`].
        job: u64,
    },
    /// Cancel a job.
    CancelJob {
        /// Id from [`Response::Submitted`].
        job: u64,
    },
    /// Block on a job; the server streams [`Response::Progress`] frames
    /// until the [`Response::Outcome`].
    AwaitJob {
        /// Id from [`Response::Submitted`].
        job: u64,
    },
    /// Fetch the `.sinw` snapshot of a registered circuit.
    FetchSnapshot {
        /// Registry key.
        key: u64,
    },
    /// Fetch server counters.
    Stats,
}

impl Request {
    /// Encode into `(frame_type, payload)`, ready for [`write_frame`].
    #[must_use]
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut out = Vec::new();
        let ty = match self {
            Request::RegisterBench { name, source } => {
                put_str(&mut out, name);
                put_str(&mut out, source);
                frame_type::REGISTER_BENCH
            }
            Request::RegisterSnapshot { bytes } => {
                out.extend_from_slice(bytes);
                frame_type::REGISTER_SNAPSHOT
            }
            Request::SubmitJob(job) => {
                job.encode_into(&mut out);
                frame_type::SUBMIT_JOB
            }
            Request::JobProgress { job } => {
                put_u64(&mut out, *job);
                frame_type::JOB_PROGRESS
            }
            Request::CancelJob { job } => {
                put_u64(&mut out, *job);
                frame_type::CANCEL_JOB
            }
            Request::AwaitJob { job } => {
                put_u64(&mut out, *job);
                frame_type::AWAIT_JOB
            }
            Request::FetchSnapshot { key } => {
                put_u64(&mut out, *key);
                frame_type::FETCH_SNAPSHOT
            }
            Request::Stats => frame_type::STATS,
        };
        (ty, out)
    }

    /// Decode a request payload. Total: every malformed payload is a
    /// typed [`WireError`], and the payload must be fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownFrameType`] when `ty` is not a request code;
    /// otherwise the typed decode failure.
    pub fn decode(ty: u16, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match ty {
            frame_type::REGISTER_BENCH => Request::RegisterBench {
                name: r.str("bench name")?,
                source: r.str("bench source")?,
            },
            frame_type::REGISTER_SNAPSHOT => Request::RegisterSnapshot { bytes: r.rest() },
            frame_type::SUBMIT_JOB => Request::SubmitJob(WireJob::decode_from(&mut r)?),
            frame_type::JOB_PROGRESS => Request::JobProgress { job: r.u64()? },
            frame_type::CANCEL_JOB => Request::CancelJob { job: r.u64()? },
            frame_type::AWAIT_JOB => Request::AwaitJob { job: r.u64()? },
            frame_type::FETCH_SNAPSHOT => Request::FetchSnapshot { key: r.u64()? },
            frame_type::STATS => Request::Stats,
            other => return Err(WireError::UnknownFrameType { found: other }),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Typed server-side error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or payload failed to decode.
    BadFrame,
    /// The frame decoded but its type is not a request this server
    /// serves.
    UnknownRequest,
    /// The `.bench` source failed to parse.
    Parse,
    /// The compile pipeline failed (or panicked) on the source.
    CompileFailed,
    /// The artifact exceeds the registry's byte capacity.
    Oversized,
    /// The session's cumulative register-byte quota is exhausted.
    ByteQuota,
    /// The session's in-flight job quota is exhausted.
    JobQuota,
    /// The job id names no job of this session.
    UnknownJob,
    /// The key names no registered circuit.
    UnknownKey,
    /// The uploaded `.sinw` snapshot failed to decode.
    SnapshotRejected,
    /// The server is draining: in-flight work finishes, new work is
    /// refused.
    Draining,
}

impl ErrorCode {
    /// The on-wire code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnknownRequest => 2,
            ErrorCode::Parse => 3,
            ErrorCode::CompileFailed => 4,
            ErrorCode::Oversized => 5,
            ErrorCode::ByteQuota => 6,
            ErrorCode::JobQuota => 7,
            ErrorCode::UnknownJob => 8,
            ErrorCode::UnknownKey => 9,
            ErrorCode::SnapshotRejected => 10,
            ErrorCode::Draining => 11,
        }
    }

    /// Inverse of [`code`](ErrorCode::code).
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownRequest,
            3 => ErrorCode::Parse,
            4 => ErrorCode::CompileFailed,
            5 => ErrorCode::Oversized,
            6 => ErrorCode::ByteQuota,
            7 => ErrorCode::JobQuota,
            8 => ErrorCode::UnknownJob,
            9 => ErrorCode::UnknownKey,
            10 => ErrorCode::SnapshotRejected,
            11 => ErrorCode::Draining,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A job's terminal outcome as it travels on the wire. Reports carry
/// the fields the identity tests compare bit-for-bit; campaign wall
/// times and per-fault statuses stay server-side (they are profiling
/// detail, not results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// Fault-simulation result (indices into the collapsed
    /// representative list).
    FaultSim {
        /// Detected fault indices, ascending.
        detected: Vec<usize>,
        /// Undetected fault indices, ascending.
        undetected: Vec<usize>,
        /// Per-pattern first-detection credit.
        first_detections: Vec<usize>,
    },
    /// Captured signature matrix geometry + packed bits.
    Signatures {
        /// Number of faults (rows).
        faults: u64,
        /// Number of patterns.
        patterns: u64,
        /// Number of primary outputs.
        outputs: u64,
        /// Row-major packed bits.
        bits: Vec<u64>,
    },
    /// Campaign results (the deterministic fields; wall times stay
    /// server-side).
    Campaign {
        /// The final compacted pattern set.
        patterns: Vec<Vec<bool>>,
        /// Size of the targeted fault list.
        total_faults: u64,
        /// Faults first detected in the random phase.
        detected_random: u64,
        /// Faults first detected deterministically.
        detected_deterministic: u64,
        /// Faults proved redundant.
        untestable: u64,
        /// Faults abandoned at the backtrack limit.
        aborted: u64,
        /// Total PODEM invocations.
        podem_calls: u64,
    },
    /// The job was cancelled before it finished.
    Cancelled,
    /// The job's deadline expired before it finished.
    TimedOut,
    /// The job could not produce a result.
    Failed {
        /// What went wrong.
        reason: String,
    },
}

const OUTCOME_TAG_FAULTSIM: u8 = 1;
const OUTCOME_TAG_SIGNATURES: u8 = 2;
const OUTCOME_TAG_CAMPAIGN: u8 = 3;
const OUTCOME_TAG_CANCELLED: u8 = 4;
const OUTCOME_TAG_TIMED_OUT: u8 = 5;
const OUTCOME_TAG_FAILED: u8 = 6;

impl WireOutcome {
    /// Project an engine [`JobOutcome`] onto its wire form — the
    /// conversion the server applies before the final frame of an
    /// `AwaitJob`, and the one identity tests apply to their in-process
    /// reference outcomes.
    #[must_use]
    pub fn from_outcome(outcome: &JobOutcome) -> Self {
        match outcome {
            JobOutcome::FaultSim(report) => Self::from_fault_sim(report),
            JobOutcome::Signatures(matrix) => Self::from_signatures(matrix),
            JobOutcome::Campaign(report) => Self::from_campaign(report),
            JobOutcome::Diagnosis(_) => WireOutcome::Failed {
                reason: String::from("diagnosis jobs are not served over the wire"),
            },
            JobOutcome::Cancelled => WireOutcome::Cancelled,
            JobOutcome::TimedOut => WireOutcome::TimedOut,
            JobOutcome::Failed { reason } => WireOutcome::Failed {
                reason: reason.clone(),
            },
        }
    }

    /// Wire form of a [`FaultSimReport`].
    #[must_use]
    pub fn from_fault_sim(report: &FaultSimReport) -> Self {
        WireOutcome::FaultSim {
            detected: report.detected.clone(),
            undetected: report.undetected.clone(),
            first_detections: report.first_detections.clone(),
        }
    }

    /// Wire form of a [`SignatureMatrix`].
    #[must_use]
    pub fn from_signatures(matrix: &SignatureMatrix) -> Self {
        WireOutcome::Signatures {
            faults: matrix.fault_count() as u64,
            patterns: matrix.pattern_count() as u64,
            outputs: matrix.output_count() as u64,
            bits: matrix.bits().to_vec(),
        }
    }

    /// Wire form of an [`AtpgReport`] (deterministic fields only).
    #[must_use]
    pub fn from_campaign(report: &AtpgReport) -> Self {
        WireOutcome::Campaign {
            patterns: report.patterns.clone(),
            total_faults: report.total_faults as u64,
            detected_random: report.detected_random as u64,
            detected_deterministic: report.detected_deterministic as u64,
            untestable: report.untestable as u64,
            aborted: report.aborted as u64,
            podem_calls: report.podem_calls as u64,
        }
    }

    /// Rebuild the [`SignatureMatrix`] a `Signatures` outcome carries.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when this is not a `Signatures` outcome
    /// or the geometry does not match the word count.
    pub fn to_signature_matrix(&self) -> Result<SignatureMatrix, WireError> {
        match self {
            WireOutcome::Signatures {
                faults,
                patterns,
                outputs,
                bits,
            } => SignatureMatrix::from_raw_parts(
                *faults as usize,
                *patterns as usize,
                *outputs as usize,
                bits.clone(),
            )
            .map_err(|detail| WireError::Malformed {
                context: "signature matrix",
                detail,
            }),
            _ => Err(WireError::Malformed {
                context: "signature matrix",
                detail: String::from("outcome is not a signature capture"),
            }),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WireOutcome::FaultSim {
                detected,
                undetected,
                first_detections,
            } => {
                out.push(OUTCOME_TAG_FAULTSIM);
                put_indices(out, detected, "detected fault");
                put_indices(out, undetected, "undetected fault");
                put_indices(out, first_detections, "first detection");
            }
            WireOutcome::Signatures {
                faults,
                patterns,
                outputs,
                bits,
            } => {
                out.push(OUTCOME_TAG_SIGNATURES);
                put_u64(out, *faults);
                put_u64(out, *patterns);
                put_u64(out, *outputs);
                put_u64s(out, bits, "signature word");
            }
            WireOutcome::Campaign {
                patterns,
                total_faults,
                detected_random,
                detected_deterministic,
                untestable,
                aborted,
                podem_calls,
            } => {
                out.push(OUTCOME_TAG_CAMPAIGN);
                put_u64(out, *total_faults);
                put_u64(out, *detected_random);
                put_u64(out, *detected_deterministic);
                put_u64(out, *untestable);
                put_u64(out, *aborted);
                put_u64(out, *podem_calls);
                put_patterns(out, patterns);
            }
            WireOutcome::Cancelled => out.push(OUTCOME_TAG_CANCELLED),
            WireOutcome::TimedOut => out.push(OUTCOME_TAG_TIMED_OUT),
            WireOutcome::Failed { reason } => {
                out.push(OUTCOME_TAG_FAILED);
                put_str(out, reason);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            OUTCOME_TAG_FAULTSIM => Ok(WireOutcome::FaultSim {
                detected: r.indices("detected faults")?,
                undetected: r.indices("undetected faults")?,
                first_detections: r.indices("first detections")?,
            }),
            OUTCOME_TAG_SIGNATURES => Ok(WireOutcome::Signatures {
                faults: r.u64()?,
                patterns: r.u64()?,
                outputs: r.u64()?,
                bits: r.u64s("signature words")?,
            }),
            OUTCOME_TAG_CAMPAIGN => Ok(WireOutcome::Campaign {
                total_faults: r.u64()?,
                detected_random: r.u64()?,
                detected_deterministic: r.u64()?,
                untestable: r.u64()?,
                aborted: r.u64()?,
                podem_calls: r.u64()?,
                patterns: r.patterns("campaign patterns")?,
            }),
            OUTCOME_TAG_CANCELLED => Ok(WireOutcome::Cancelled),
            OUTCOME_TAG_TIMED_OUT => Ok(WireOutcome::TimedOut),
            OUTCOME_TAG_FAILED => Ok(WireOutcome::Failed {
                reason: r.str("failure reason")?,
            }),
            other => Err(WireError::Malformed {
                context: "outcome tag",
                detail: format!("unknown outcome tag {other}"),
            }),
        }
    }
}

/// Server counters shipped by [`Response::StatsReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Currently open sessions.
    pub sessions: u64,
    /// Jobs accepted over the server's lifetime.
    pub jobs_submitted: u64,
    /// Registry hits.
    pub hits: u64,
    /// Registry misses.
    pub misses: u64,
    /// Compile-pipeline runs actually performed.
    pub compiles: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Currently resident registry entries.
    pub entries: u64,
    /// Currently resident registry bytes.
    pub bytes: u64,
    /// Registry byte capacity.
    pub capacity: u64,
}

/// A server response, one frame each (an `AwaitJob` elicits a stream of
/// [`Response::Progress`] frames capped by one [`Response::Outcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A circuit was registered (or was already resident).
    Registered {
        /// Content-hash registry key — the handle every job names.
        key: u64,
        /// Approximate resident bytes of the compiled artifact.
        approx_bytes: u64,
    },
    /// A job was accepted.
    Submitted {
        /// Engine job id, scoped to this session.
        job: u64,
    },
    /// One progress observation.
    Progress {
        /// The observed job.
        job: u64,
        /// Work units finished.
        done: u64,
        /// Total work units.
        total: u64,
        /// Whether the job has reached a terminal outcome.
        finished: bool,
    },
    /// A job's terminal outcome.
    Outcome {
        /// The finished job.
        job: u64,
        /// Its wire-form outcome.
        outcome: WireOutcome,
    },
    /// Raw `.sinw` snapshot bytes.
    SnapshotBytes {
        /// The container bytes, decodable by
        /// [`Snapshot::decode`](crate::snapshot::Snapshot::decode).
        bytes: Vec<u8>,
    },
    /// Server counters.
    StatsReport(WireStats),
    /// A typed error.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encode into `(frame_type, payload)`, ready for [`write_frame`].
    #[must_use]
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut out = Vec::new();
        let ty = match self {
            Response::Registered { key, approx_bytes } => {
                put_u64(&mut out, *key);
                put_u64(&mut out, *approx_bytes);
                frame_type::REGISTERED
            }
            Response::Submitted { job } => {
                put_u64(&mut out, *job);
                frame_type::SUBMITTED
            }
            Response::Progress {
                job,
                done,
                total,
                finished,
            } => {
                put_u64(&mut out, *job);
                put_u64(&mut out, *done);
                put_u64(&mut out, *total);
                put_bool(&mut out, *finished);
                frame_type::PROGRESS
            }
            Response::Outcome { job, outcome } => {
                put_u64(&mut out, *job);
                outcome.encode_into(&mut out);
                frame_type::OUTCOME
            }
            Response::SnapshotBytes { bytes } => {
                out.extend_from_slice(bytes);
                frame_type::SNAPSHOT_BYTES
            }
            Response::StatsReport(stats) => {
                put_u64(&mut out, stats.sessions);
                put_u64(&mut out, stats.jobs_submitted);
                put_u64(&mut out, stats.hits);
                put_u64(&mut out, stats.misses);
                put_u64(&mut out, stats.compiles);
                put_u64(&mut out, stats.evictions);
                put_u64(&mut out, stats.entries);
                put_u64(&mut out, stats.bytes);
                put_u64(&mut out, stats.capacity);
                frame_type::STATS_REPORT
            }
            Response::Error { code, message } => {
                put_u16(&mut out, code.code());
                put_str(&mut out, message);
                frame_type::ERROR
            }
        };
        (ty, out)
    }

    /// Decode a response payload. Total, full-consumption, typed — the
    /// mirror of [`Request::decode`].
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownFrameType`] when `ty` is not a response
    /// code; otherwise the typed decode failure.
    pub fn decode(ty: u16, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match ty {
            frame_type::REGISTERED => Response::Registered {
                key: r.u64()?,
                approx_bytes: r.u64()?,
            },
            frame_type::SUBMITTED => Response::Submitted { job: r.u64()? },
            frame_type::PROGRESS => Response::Progress {
                job: r.u64()?,
                done: r.u64()?,
                total: r.u64()?,
                finished: r.bool("progress finished")?,
            },
            frame_type::OUTCOME => Response::Outcome {
                job: r.u64()?,
                outcome: WireOutcome::decode_from(&mut r)?,
            },
            frame_type::SNAPSHOT_BYTES => Response::SnapshotBytes { bytes: r.rest() },
            frame_type::STATS_REPORT => Response::StatsReport(WireStats {
                sessions: r.u64()?,
                jobs_submitted: r.u64()?,
                hits: r.u64()?,
                misses: r.u64()?,
                compiles: r.u64()?,
                evictions: r.u64()?,
                entries: r.u64()?,
                bytes: r.u64()?,
                capacity: r.u64()?,
            }),
            frame_type::ERROR => {
                let raw = r.u16()?;
                let code = ErrorCode::from_code(raw).ok_or_else(|| WireError::Malformed {
                    context: "error code",
                    detail: format!("unknown error code {raw}"),
                })?;
                Response::Error {
                    code,
                    message: r.str("error message")?,
                }
            }
            other => return Err(WireError::UnknownFrameType { found: other }),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(req: &Request) {
        let (ty, payload) = req.encode();
        let decoded = Request::decode(ty, &payload).expect("round trip");
        assert_eq!(&decoded, req);
    }

    fn round_trip_response(resp: &Response) {
        let (ty, payload) = resp.encode();
        let decoded = Response::decode(ty, &payload).expect("round trip");
        assert_eq!(&decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::RegisterBench {
            name: String::from("c17"),
            source: String::from("INPUT(a)\nOUTPUT(z)\nz = NAND(a, a)\n"),
        });
        round_trip_request(&Request::RegisterSnapshot {
            bytes: vec![1, 2, 3, 255],
        });
        round_trip_request(&Request::SubmitJob(WireJob::FaultSim {
            key: 0xDEAD_BEEF,
            patterns: vec![vec![true, false, true], vec![false, false, true]],
            drop_detected: true,
            threads: 2,
            timeout_ms: 5000,
        }));
        round_trip_request(&Request::SubmitJob(WireJob::Signatures {
            key: 7,
            patterns: vec![],
            threads: 1,
            timeout_ms: 0,
        }));
        round_trip_request(&Request::SubmitJob(WireJob::Campaign {
            key: 9,
            seed: 42,
            timeout_ms: 100,
        }));
        round_trip_request(&Request::JobProgress { job: 3 });
        round_trip_request(&Request::CancelJob { job: 4 });
        round_trip_request(&Request::AwaitJob { job: 5 });
        round_trip_request(&Request::FetchSnapshot { key: 6 });
        round_trip_request(&Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Registered {
            key: 1,
            approx_bytes: 4096,
        });
        round_trip_response(&Response::Submitted { job: 2 });
        round_trip_response(&Response::Progress {
            job: 2,
            done: 3,
            total: 9,
            finished: false,
        });
        round_trip_response(&Response::Outcome {
            job: 2,
            outcome: WireOutcome::FaultSim {
                detected: vec![0, 2, 5],
                undetected: vec![1],
                first_detections: vec![2, 0, 1],
            },
        });
        round_trip_response(&Response::Outcome {
            job: 3,
            outcome: WireOutcome::Signatures {
                faults: 2,
                patterns: 4,
                outputs: 8,
                bits: vec![0xAAAA, 0x5555],
            },
        });
        round_trip_response(&Response::Outcome {
            job: 4,
            outcome: WireOutcome::Campaign {
                patterns: vec![vec![true, true], vec![false, true]],
                total_faults: 10,
                detected_random: 4,
                detected_deterministic: 5,
                untestable: 1,
                aborted: 0,
                podem_calls: 6,
            },
        });
        round_trip_response(&Response::Outcome {
            job: 5,
            outcome: WireOutcome::Cancelled,
        });
        round_trip_response(&Response::Outcome {
            job: 6,
            outcome: WireOutcome::TimedOut,
        });
        round_trip_response(&Response::Outcome {
            job: 7,
            outcome: WireOutcome::Failed {
                reason: String::from("injected"),
            },
        });
        round_trip_response(&Response::SnapshotBytes { bytes: vec![0; 64] });
        round_trip_response(&Response::StatsReport(WireStats {
            sessions: 1,
            jobs_submitted: 2,
            hits: 3,
            misses: 4,
            compiles: 5,
            evictions: 6,
            entries: 7,
            bytes: 8,
            capacity: 9,
        }));
        round_trip_response(&Response::Error {
            code: ErrorCode::ByteQuota,
            message: String::from("quota exhausted"),
        });
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let (ty, payload) = Request::JobProgress { job: 17 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, ty, &payload).expect("write");
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("read") {
            FrameEvent::Frame {
                frame_type,
                payload,
            } => {
                assert_eq!(frame_type, ty);
                assert_eq!(
                    Request::decode(frame_type, &payload).expect("decode"),
                    Request::JobProgress { job: 17 }
                );
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // And the stream is now cleanly closed.
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect("eof"),
            FrameEvent::Closed
        );
    }

    #[test]
    fn hostile_length_dies_before_allocation() {
        let mut frame = encode_frame(frame_type::STATS, &[]);
        frame[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).expect_err("must reject");
        assert!(matches!(err, WireError::Oversized { .. }), "got {err:?}");
    }

    #[test]
    fn trailing_bytes_inside_a_payload_are_rejected() {
        let (ty, mut payload) = Request::JobProgress { job: 1 }.encode();
        payload.push(0);
        let err = Request::decode(ty, &payload).expect_err("must reject");
        assert_eq!(err, WireError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn unknown_frame_types_are_typed() {
        assert_eq!(
            Request::decode(0x7E, &[]),
            Err(WireError::UnknownFrameType { found: 0x7E })
        );
        assert_eq!(
            Response::decode(0xFE, &[]),
            Err(WireError::UnknownFrameType { found: 0xFE })
        );
        // A response code handed to the request decoder is unknown too.
        assert!(matches!(
            Request::decode(frame_type::ERROR, &[]),
            Err(WireError::UnknownFrameType { .. })
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::UnknownRequest,
            ErrorCode::Parse,
            ErrorCode::CompileFailed,
            ErrorCode::Oversized,
            ErrorCode::ByteQuota,
            ErrorCode::JobQuota,
            ErrorCode::UnknownJob,
            ErrorCode::UnknownKey,
            ErrorCode::SnapshotRejected,
            ErrorCode::Draining,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(999), None);
    }
}

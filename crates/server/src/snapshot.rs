//! The versioned binary `.sinw` snapshot format.
//!
//! A snapshot lets a service session survive a restart without
//! re-parsing `.bench` text or re-deriving the fault universe: it
//! serializes a mapped [`Circuit`], its enumerated stuck-at universe,
//! the structural collapse, and (optionally) a class-compressed
//! [`FaultDictionary`] — everything expensive about a
//! [`CompiledCircuit`](crate::registry::CompiledCircuit) except the
//! [`SimGraph`](sinw_atpg::SimGraph) precompute, which is derived state
//! and cheaper to rebuild than to ship.
//!
//! ## Container layout (all integers little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"SINW"` |
//! | 4      | 2    | format version (currently 1) |
//! | 6      | 2    | reserved (must be 0) |
//! | 8      | 8    | payload length in bytes |
//! | 16     | 8    | FNV-1a 64 checksum of the payload |
//! | 24     | n    | payload (sections below) |
//!
//! ## Payload sections, in order
//!
//! | section | contents |
//! |---------|----------|
//! | name    | `str` — circuit name |
//! | circuit | `u32` signal count; per signal a tagged creation op (`0` = primary input + `str` name; `1` = gate + `u8` cell code + `str` instance name + one `u32` input id per cell pin + `str` output-signal name); `u32` output count + `u32` ids |
//! | faults  | `u32` count; per fault `u8` site tag (`0` = stem + `u32` signal, `1` = branch + `u32` gate + `u32` pin) + `u8` stuck value |
//! | collapse | `u8` presence; if present `u32` representative count + representatives (fault encoding) + `u32` class count + `u32` class index per fault |
//! | dictionary | `u8` presence; if present `u32` patterns + `u32` outputs + `u32` classes + `u32` faults + packed `u64` class signatures + `u32` class index per fault |
//!
//! `str` is a `u32` byte length followed by UTF-8 bytes. The circuit
//! section is a **replay log in signal-id order**: decoding replays each
//! creation op through the [`Circuit`] builder, which reproduces signal
//! ids, gate ids, topological order, and the fanout index exactly —
//! re-encoding a decoded snapshot is guaranteed byte-identical.
//!
//! ## Decode discipline
//!
//! Decoding is total: any byte string produces either a [`Snapshot`] or
//! a typed [`SnapshotError`] — never a panic and never an allocation
//! larger than the input justifies. Every count is bounds-checked
//! against the remaining payload *before* any allocation, every signal /
//! gate / pin / class index is range-checked against the structure
//! decoded so far, and the builder's own arity and topological-order
//! checks run on replay.

use sinw_atpg::collapse::CollapsedFaults;
use sinw_atpg::diagnose::FaultDictionary;
use sinw_atpg::fault_list::{FaultSite, StuckAtFault};
use sinw_switch::cells::CellKind;
use sinw_switch::gate::{Circuit, GateId, SignalId};

/// The four magic bytes every `.sinw` file starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SINW";

/// The current format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Container header size in bytes.
const HEADER_LEN: usize = 24;

/// FNV-1a 64 over the payload — the integrity checksum of the container.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in payload {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Typed decode failure. Every malformed input maps onto one of these —
/// decoding never panics and never allocates more than the input's own
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before a read completed.
    Truncated {
        /// Byte offset of the failed read (payload-relative after the
        /// header is consumed).
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The version field names a format this build does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The header's reserved field is non-zero.
    ReservedNonZero {
        /// The value found.
        found: u16,
    },
    /// The container holds more bytes than header + declared payload.
    TrailingBytes {
        /// How many bytes too many.
        extra: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum declared in the header.
        declared: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// A structurally invalid payload: bad tag, out-of-range index,
    /// arity violation, non-UTF-8 string, inconsistent section.
    Malformed {
        /// Which section or field was being decoded.
        context: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Filesystem failure in [`Snapshot::read_file`] /
    /// [`Snapshot::write_file`] (anything but not-found, which is
    /// [`SnapshotError::NotFound`]). Carries the offending path so store
    /// recovery reports are actionable.
    Io {
        /// The path the failed operation touched.
        path: String,
        /// The OS error class.
        kind: std::io::ErrorKind,
        /// The OS error text.
        detail: String,
    },
    /// The file (or its directory) does not exist — distinguished from
    /// other I/O failures because "nothing saved yet" and "disk broke"
    /// call for different responses.
    NotFound {
        /// The path that was not found.
        path: String,
    },
}

/// Map an OS error on `path` onto the typed snapshot error, splitting
/// not-found from everything else.
pub(crate) fn io_error(path: &std::path::Path, e: &std::io::Error) -> SnapshotError {
    if e.kind() == std::io::ErrorKind::NotFound {
        SnapshotError::NotFound {
            path: path.display().to_string(),
        }
    } else {
        SnapshotError::Io {
            path: path.display().to_string(),
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated at byte {offset}: needed {needed} bytes, {available} remain"
            ),
            SnapshotError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {SNAPSHOT_MAGIC:02x?})")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found} (speak {SNAPSHOT_VERSION})")
            }
            SnapshotError::ReservedNonZero { found } => {
                write!(f, "reserved header field is {found:#06x}, expected 0")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the declared payload")
            }
            SnapshotError::ChecksumMismatch { declared, computed } => write!(
                f,
                "checksum mismatch: header declares {declared:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapshotError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            SnapshotError::Io { path, kind, detail } => {
                write!(f, "snapshot i/o on {path} ({kind:?}): {detail}")
            }
            SnapshotError::NotFound { path } => write!(f, "snapshot not found: {path}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded (or to-be-encoded) `.sinw` snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Circuit name (a label; not part of any registry key).
    pub name: String,
    /// The mapped gate-level circuit.
    pub circuit: Circuit,
    /// The enumerated stuck-at universe (may be empty if the writer
    /// chose not to store it).
    pub faults: Vec<StuckAtFault>,
    /// Structural collapse of `faults`, when stored.
    pub collapsed: Option<CollapsedFaults>,
    /// A class-compressed fault dictionary, when stored.
    pub dictionary: Option<FaultDictionary>,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize, what: &str) {
    let v = u32::try_from(v).unwrap_or_else(|_| panic!("{what} count {v} overflows u32"));
    put_u32(out, v);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len(), "string byte");
    out.extend_from_slice(s.as_bytes());
}

fn put_fault(out: &mut Vec<u8>, fault: StuckAtFault) {
    match fault.site {
        FaultSite::Signal(s) => {
            out.push(0);
            put_usize(out, s.0, "signal id");
        }
        FaultSite::GatePin(g, pin) => {
            out.push(1);
            put_usize(out, g.0, "gate id");
            put_usize(out, pin, "pin");
        }
    }
    out.push(u8::from(fault.value));
}

/// Append the canonical circuit section (the replay log in signal-id
/// order). Also the byte string [`crate::registry`] hashes to key
/// circuits that have no `.bench` source text.
fn put_circuit(out: &mut Vec<u8>, circuit: &Circuit) {
    put_usize(out, circuit.signal_count(), "signal");
    for s in 0..circuit.signal_count() {
        let sig = SignalId(s);
        match circuit.driver(sig) {
            None => {
                out.push(0);
                put_str(out, circuit.signal_name(sig));
            }
            Some(gid) => {
                let gate = &circuit.gates()[gid.0];
                out.push(1);
                out.push(gate.kind.code());
                put_str(out, &gate.name);
                for input in &gate.inputs {
                    put_usize(out, input.0, "gate input id");
                }
                put_str(out, circuit.signal_name(sig));
            }
        }
    }
    put_usize(out, circuit.primary_outputs().len(), "primary output");
    for po in circuit.primary_outputs() {
        put_usize(out, po.0, "primary output id");
    }
}

/// The canonical byte encoding of a circuit alone — the content the
/// registry hashes for circuits with no source text. Identical circuit
/// structure ⇒ identical bytes.
#[must_use]
pub fn canonical_circuit_bytes(circuit: &Circuit) -> Vec<u8> {
    let mut out = Vec::new();
    put_circuit(&mut out, circuit);
    out
}

impl Snapshot {
    /// Encode into a self-contained `.sinw` byte string (header +
    /// checksummed payload).
    ///
    /// # Panics
    ///
    /// Panics if any count exceeds `u32::MAX` — beyond the format's
    /// addressing, and orders of magnitude beyond any circuit in the
    /// workspace.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        // Panic / delay injection site; an `ioerr` arm is meaningless
        // here (encoding is infallible) and is deliberately ignored.
        let _ = crate::failpoint::hit("snapshot.encode");
        let mut payload = Vec::new();
        put_str(&mut payload, &self.name);
        put_circuit(&mut payload, &self.circuit);

        put_usize(&mut payload, self.faults.len(), "fault");
        for &fault in &self.faults {
            put_fault(&mut payload, fault);
        }

        match &self.collapsed {
            None => payload.push(0),
            Some(collapsed) => {
                payload.push(1);
                put_usize(
                    &mut payload,
                    collapsed.representatives.len(),
                    "representative",
                );
                for &rep in &collapsed.representatives {
                    put_fault(&mut payload, rep);
                }
                put_usize(&mut payload, collapsed.class_of.len(), "collapse class");
                for &class in &collapsed.class_of {
                    put_usize(&mut payload, class, "collapse class index");
                }
            }
        }

        match &self.dictionary {
            None => payload.push(0),
            Some(dict) => {
                payload.push(1);
                put_usize(&mut payload, dict.pattern_count(), "dictionary pattern");
                put_usize(&mut payload, dict.output_count(), "dictionary output");
                put_usize(&mut payload, dict.class_count(), "dictionary class");
                put_usize(&mut payload, dict.fault_count(), "dictionary fault");
                for class in 0..dict.class_count() {
                    for &word in dict.class_signature(class) {
                        put_u64(&mut payload, word);
                    }
                }
                for &class in dict.class_of() {
                    put_usize(&mut payload, class, "dictionary class index");
                }
            }
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u16(&mut out, SNAPSHOT_VERSION);
        put_u16(&mut out, 0);
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, checksum(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a `.sinw` byte string.
    ///
    /// # Errors
    ///
    /// Returns the typed [`SnapshotError`] describing the first problem
    /// found; see the module docs for the decode discipline.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        crate::failpoint::hit("snapshot.decode").map_err(|e| SnapshotError::Malformed {
            context: "fail point",
            detail: e.to_string(),
        })?;
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                offset: 0,
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let reserved = u16::from_le_bytes(bytes[6..8].try_into().expect("2-byte slice"));
        if reserved != 0 {
            return Err(SnapshotError::ReservedNonZero { found: reserved });
        }
        let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let body = &bytes[HEADER_LEN..];
        let declared_usize = usize::try_from(declared).unwrap_or(usize::MAX);
        if body.len() < declared_usize {
            return Err(SnapshotError::Truncated {
                offset: 0,
                needed: declared_usize,
                available: body.len(),
            });
        }
        if body.len() > declared_usize {
            return Err(SnapshotError::TrailingBytes {
                extra: body.len() - declared_usize,
            });
        }
        let declared_sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
        let computed = checksum(body);
        if computed != declared_sum {
            return Err(SnapshotError::ChecksumMismatch {
                declared: declared_sum,
                computed,
            });
        }

        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        let name = r.str("name")?;
        let circuit = read_circuit(&mut r)?;
        let faults = read_faults(&mut r, &circuit)?;
        let collapsed = read_collapse(&mut r, &circuit, &faults)?;
        let dictionary = read_dictionary(&mut r)?;
        if r.pos != body.len() {
            return Err(SnapshotError::Malformed {
                context: "payload",
                detail: format!(
                    "{} undecoded bytes after the last section",
                    body.len() - r.pos
                ),
            });
        }
        Ok(Snapshot {
            name,
            circuit,
            faults,
            collapsed,
            dictionary,
        })
    }

    /// Encode and write to `path` **atomically**: the bytes land in a
    /// `.tmp` sibling first, are fsynced, and only then renamed over
    /// `path` (followed by a directory fsync). A crash at any step
    /// leaves either the old file or the new file — never a torn
    /// mixture; at worst a `.tmp` orphan remains, which
    /// [`SnapshotStore::open`](crate::store::SnapshotStore::open) sweeps
    /// on the next boot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] / [`SnapshotError::NotFound`] on
    /// filesystem failure.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        write_bytes_atomic(path.as_ref(), &self.encode())
    }

    /// Read and decode `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::NotFound`] when the file does not exist,
    /// [`SnapshotError::Io`] on any other filesystem failure, else any
    /// decode error of the file's contents.
    pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| io_error(path, &e))?;
        crate::failpoint::hit("snapshot.read.io")
            .map_err(|e| io_error(path, &std::io::Error::from(e)))?;
        Self::decode(&bytes)
    }
}

/// The atomic write protocol behind [`Snapshot::write_file`] and the
/// [`SnapshotStore`](crate::store::SnapshotStore): temp sibling → fsync
/// → rename → directory fsync. Fail points cover each step (see the
/// [`failpoint`](crate::failpoint) catalog); an injected fault between
/// fsync and rename deliberately leaves the temp file behind to simulate
/// crash debris.
pub(crate) fn write_bytes_atomic(
    path: &std::path::Path,
    bytes: &[u8],
) -> Result<(), SnapshotError> {
    use std::io::Write as _;

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| SnapshotError::Io {
            path: path.display().to_string(),
            kind: std::io::ErrorKind::InvalidInput,
            detail: String::from("path has no usable file name"),
        })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let tmp = dir.join(format!("{file_name}.{}.tmp", std::process::id()));

    crate::failpoint::hit("snapshot.write.tmp")
        .map_err(|e| io_error(&tmp, &std::io::Error::from(e)))?;
    let mut file = std::fs::File::create(&tmp).map_err(|e| io_error(&tmp, &e))?;
    file.write_all(bytes).map_err(|e| io_error(&tmp, &e))?;
    if let Err(e) = crate::failpoint::hit("snapshot.write.fsync") {
        // Fault before the data is durable: withdraw the temp file so a
        // half-written artifact can never be mistaken for a snapshot.
        drop(file);
        let _ = std::fs::remove_file(&tmp);
        return Err(io_error(&tmp, &std::io::Error::from(e)));
    }
    file.sync_all().map_err(|e| io_error(&tmp, &e))?;
    drop(file);
    // A fault here models a crash between making the temp durable and
    // publishing it: the temp file is left behind on purpose, exactly
    // the debris the store's recovery scan must sweep.
    crate::failpoint::hit("snapshot.write.rename")
        .map_err(|e| io_error(path, &std::io::Error::from(e)))?;
    std::fs::rename(&tmp, path).map_err(|e| io_error(path, &e))?;
    if let Ok(d) = std::fs::File::open(&dir) {
        // Make the rename itself durable. Failure here is not fatal to
        // the data (the file content is already synced).
        let _ = d.sync_all();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over the payload. Every read is total; every
/// count is validated against the remaining bytes before any allocation
/// sized by it.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    /// A `u32` element count whose elements each consume at least
    /// `min_elem_bytes` — rejected up front if even minimal elements
    /// cannot fit in the remaining payload, so a hostile count can never
    /// size an allocation beyond the input's own length.
    fn count(
        &mut self,
        context: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_elem_bytes);
        if need > self.remaining() {
            return Err(SnapshotError::Malformed {
                context,
                detail: format!(
                    "count {n} needs at least {need} bytes but only {} remain",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    fn str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let len = self.count(context, 1)?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|e| SnapshotError::Malformed {
            context,
            detail: format!("invalid UTF-8: {e}"),
        })
    }
}

fn read_circuit(r: &mut Reader<'_>) -> Result<Circuit, SnapshotError> {
    // Each signal op consumes at least 2 bytes (tag + empty-name length
    // low byte is already 4 — be conservative and use the tag alone).
    let n_signals = r.count("circuit signal", 1)?;
    let mut circuit = Circuit::new();
    for s in 0..n_signals {
        match r.u8()? {
            0 => {
                let name = r.str("primary input name")?;
                circuit.add_input(name);
            }
            1 => {
                let code = r.u8()?;
                let kind = CellKind::from_code(code).ok_or_else(|| SnapshotError::Malformed {
                    context: "gate cell kind",
                    detail: format!("unknown cell code {code} at signal {s}"),
                })?;
                let name = r.str("gate instance name")?;
                let mut inputs = Vec::with_capacity(kind.input_count());
                for _ in 0..kind.input_count() {
                    inputs.push(SignalId(r.u32()? as usize));
                }
                let out = circuit.try_add_gate(kind, name, &inputs).map_err(|e| {
                    SnapshotError::Malformed {
                        context: "gate",
                        detail: format!("replay of signal {s} rejected: {e}"),
                    }
                })?;
                let signal_name = r.str("gate output name")?;
                circuit.set_signal_name(out, signal_name);
            }
            tag => {
                return Err(SnapshotError::Malformed {
                    context: "circuit signal",
                    detail: format!("unknown creation tag {tag} at signal {s}"),
                })
            }
        }
    }
    let n_outputs = r.count("primary output", 4)?;
    for _ in 0..n_outputs {
        let id = r.u32()? as usize;
        if id >= circuit.signal_count() {
            return Err(SnapshotError::Malformed {
                context: "primary output",
                detail: format!("output id {id} out of range ({n_signals} signals)"),
            });
        }
        circuit.mark_output(SignalId(id));
    }
    Ok(circuit)
}

fn read_fault(
    r: &mut Reader<'_>,
    circuit: &Circuit,
    context: &'static str,
) -> Result<StuckAtFault, SnapshotError> {
    let site = match r.u8()? {
        0 => {
            let id = r.u32()? as usize;
            if id >= circuit.signal_count() {
                return Err(SnapshotError::Malformed {
                    context,
                    detail: format!("stem signal {id} out of range"),
                });
            }
            FaultSite::Signal(SignalId(id))
        }
        1 => {
            let gate = r.u32()? as usize;
            let pin = r.u32()? as usize;
            let arity = circuit
                .gates()
                .get(gate)
                .map(|g| g.inputs.len())
                .ok_or_else(|| SnapshotError::Malformed {
                    context,
                    detail: format!("branch gate {gate} out of range"),
                })?;
            if pin >= arity {
                return Err(SnapshotError::Malformed {
                    context,
                    detail: format!("branch pin {pin} out of range for gate {gate} ({arity} pins)"),
                });
            }
            FaultSite::GatePin(GateId(gate), pin)
        }
        tag => {
            return Err(SnapshotError::Malformed {
                context,
                detail: format!("unknown fault site tag {tag}"),
            })
        }
    };
    let value = match r.u8()? {
        0 => false,
        1 => true,
        v => {
            return Err(SnapshotError::Malformed {
                context,
                detail: format!("stuck value {v} is neither 0 nor 1"),
            })
        }
    };
    Ok(StuckAtFault { site, value })
}

fn read_faults(r: &mut Reader<'_>, circuit: &Circuit) -> Result<Vec<StuckAtFault>, SnapshotError> {
    // Minimal fault encoding: tag + u32 + value = 6 bytes.
    let n = r.count("fault", 6)?;
    let mut faults = Vec::with_capacity(n);
    for _ in 0..n {
        faults.push(read_fault(r, circuit, "fault")?);
    }
    Ok(faults)
}

fn read_collapse(
    r: &mut Reader<'_>,
    circuit: &Circuit,
    faults: &[StuckAtFault],
) -> Result<Option<CollapsedFaults>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n_reps = r.count("collapse representative", 6)?;
            let mut representatives = Vec::with_capacity(n_reps);
            for _ in 0..n_reps {
                representatives.push(read_fault(r, circuit, "collapse representative")?);
            }
            let n_classes = r.count("collapse class", 4)?;
            if n_classes != faults.len() {
                return Err(SnapshotError::Malformed {
                    context: "collapse class",
                    detail: format!(
                        "class map covers {n_classes} faults but the universe holds {}",
                        faults.len()
                    ),
                });
            }
            let mut class_of = Vec::with_capacity(n_classes);
            for i in 0..n_classes {
                let class = r.u32()? as usize;
                if class >= representatives.len() {
                    return Err(SnapshotError::Malformed {
                        context: "collapse class",
                        detail: format!(
                            "fault {i} maps to representative {class}, only {} exist",
                            representatives.len()
                        ),
                    });
                }
                class_of.push(class);
            }
            Ok(Some(CollapsedFaults {
                representatives,
                class_of,
            }))
        }
        tag => Err(SnapshotError::Malformed {
            context: "collapse",
            detail: format!("presence flag {tag} is neither 0 nor 1"),
        }),
    }
}

fn read_dictionary(r: &mut Reader<'_>) -> Result<Option<FaultDictionary>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n_patterns = r.u32()? as usize;
            let n_outputs = r.u32()? as usize;
            let n_classes = r.u32()? as usize;
            let n_faults = r.u32()? as usize;
            let payload_bits =
                n_patterns
                    .checked_mul(n_outputs)
                    .ok_or_else(|| SnapshotError::Malformed {
                        context: "dictionary",
                        detail: String::from("pattern x output bit count overflows"),
                    })?;
            let words_per_row = payload_bits.div_ceil(64);
            let n_words =
                n_classes
                    .checked_mul(words_per_row)
                    .ok_or_else(|| SnapshotError::Malformed {
                        context: "dictionary",
                        detail: String::from("class x word count overflows"),
                    })?;
            let byte_len = n_words
                .checked_mul(8)
                .filter(|need| *need <= r.remaining())
                .ok_or_else(|| SnapshotError::Malformed {
                    context: "dictionary",
                    detail: format!(
                        "{n_classes} classes x {words_per_row} words exceed the remaining payload"
                    ),
                })?;
            let _ = byte_len;
            let mut class_sigs = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                class_sigs.push(r.u64()?);
            }
            if n_faults.saturating_mul(4) > r.remaining() {
                return Err(SnapshotError::Malformed {
                    context: "dictionary",
                    detail: format!("{n_faults} class indices exceed the remaining payload"),
                });
            }
            let mut class_of = Vec::with_capacity(n_faults);
            for _ in 0..n_faults {
                class_of.push(r.u32()? as usize);
            }
            let dict = FaultDictionary::from_raw_parts(n_patterns, n_outputs, class_sigs, class_of)
                .map_err(|detail| SnapshotError::Malformed {
                    context: "dictionary",
                    detail,
                })?;
            if dict.class_count() != n_classes {
                return Err(SnapshotError::Malformed {
                    context: "dictionary",
                    detail: format!(
                        "header declares {n_classes} classes, class map implies {}",
                        dict.class_count()
                    ),
                });
            }
            Ok(Some(dict))
        }
        tag => Err(SnapshotError::Malformed {
            context: "dictionary",
            detail: format!("presence flag {tag} is neither 0 nor 1"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinw_atpg::collapse::collapse;
    use sinw_atpg::fault_list::enumerate_stuck_at;

    fn c17_snapshot() -> Snapshot {
        let circuit = Circuit::c17();
        let faults = enumerate_stuck_at(&circuit);
        let collapsed = collapse(&circuit, &faults);
        Snapshot {
            name: String::from("c17"),
            circuit,
            faults,
            collapsed: Some(collapsed),
            dictionary: None,
        }
    }

    #[test]
    fn encode_decode_reencode_is_byte_identical() {
        let snap = c17_snapshot();
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("round trip");
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.name, "c17");
        assert_eq!(decoded.faults, snap.faults);
    }

    #[test]
    fn header_fields_live_where_the_spec_says() {
        let bytes = c17_snapshot().encode();
        assert_eq!(&bytes[0..4], &SNAPSHOT_MAGIC);
        assert_eq!(
            u16::from_le_bytes(bytes[4..6].try_into().unwrap()),
            SNAPSHOT_VERSION
        );
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        assert_eq!(declared as usize, bytes.len() - HEADER_LEN);
    }

    #[test]
    fn empty_input_is_truncated_not_panicking() {
        assert!(matches!(
            Snapshot::decode(&[]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let snap = c17_snapshot();
        let dir = std::env::temp_dir().join("sinw_snapshot_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("c17.sinw");
        snap.write_file(&path).expect("write");
        let back = Snapshot::read_file(&path).expect("read");
        assert_eq!(back.encode(), snap.encode());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_not_found_with_the_path() {
        match Snapshot::read_file("/nonexistent/definitely/not/here.sinw") {
            Err(SnapshotError::NotFound { path }) => {
                assert!(path.contains("here.sinw"), "path is carried: {path}");
            }
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn unwritable_target_is_io_with_path_and_kind() {
        let snap = c17_snapshot();
        match snap.write_file("/proc/definitely-not-writable/x.sinw") {
            Err(SnapshotError::Io { path, .. }) => {
                assert!(path.contains("x.sinw"), "path is carried: {path}");
            }
            Err(SnapshotError::NotFound { path }) => {
                assert!(path.contains("x.sinw"), "path is carried: {path}");
            }
            other => panic!("expected an i/o error, got {other:?}"),
        }
    }

    #[test]
    fn write_file_leaves_no_temp_sibling_on_success() {
        let dir = std::env::temp_dir().join("sinw_snapshot_atomic_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("c17.sinw");
        c17_snapshot().write_file(&path).expect("write");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp debris after a clean write");
        let _ = std::fs::remove_file(&path);
    }
}

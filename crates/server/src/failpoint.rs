//! Deterministic fault injection: named fail points threaded through the
//! service layer's hot paths.
//!
//! A **fail point** is a named hook compiled into production code paths
//! (job chunk execution, snapshot encode/decode and file I/O, the
//! registry compile path, the snapshot store's write protocol). When the
//! process has no fail points configured — the production default — a
//! hit is a single relaxed atomic load and a predictable branch; nothing
//! else runs and nothing allocates. When a point is armed it can inject
//! three kinds of fault, each behind a deterministic trigger:
//!
//! * [`FailAction::Panic`] — unwind at the hit site, exercising the
//!   service layer's panic-isolation contracts;
//! * [`FailAction::IoError`] — return a typed [`InjectedError`] the hit
//!   site converts into its own error channel (jobs classify these as
//!   *transient* and retry them under their bounded backoff policy);
//! * [`FailAction::Delay`] — sleep the calling thread, exercising
//!   deadlines, `wait_timeout`, and scheduling races.
//!
//! ## Triggers
//!
//! Every armed point owns a [`Trigger`] evaluated per hit, with all
//! randomness coming from a per-point seeded xorshift stream — the same
//! configuration and hit order replay the same fault schedule:
//!
//! | trigger | fires |
//! |---------|-------|
//! | [`Trigger::Always`] | on every hit |
//! | [`Trigger::Nth`] | on exactly the `n`-th hit (1-based) |
//! | [`Trigger::Every`] | on every `n`-th hit |
//! | [`Trigger::First`] | on the first `n` hits |
//! | [`Trigger::Probability`] | per hit with probability `p`, seeded |
//!
//! ## Configuration
//!
//! Tests arm points programmatically ([`configure`] / the RAII
//! [`scoped`] guard); operators arm them through the `SINW_FAILPOINTS`
//! environment variable, parsed once on first hit:
//!
//! ```text
//! SINW_FAILPOINTS="jobs.faultsim.chunk=panic@nth:3;store.write.rename=ioerr@prob:0.1:seed:42;snapshot.decode=delay:5"
//! ```
//!
//! Grammar: `point=action[@trigger]` joined by `;`. Actions are `panic`,
//! `ioerr`, and `delay:<ms>`; triggers are `always` (the default),
//! `nth:<k>`, `every:<k>`, `first:<n>`, and `prob:<p>:<seed>` with `p`
//! a probability in `[0, 1]`.
//!
//! ## Fail-point catalog
//!
//! | point | site | actions honored |
//! |-------|------|-----------------|
//! | `jobs.faultsim.chunk` | every fault-sim chunk claim | panic, ioerr (transient), delay |
//! | `jobs.signatures.chunk` | every signature-capture chunk claim | panic, ioerr (transient), delay |
//! | `jobs.campaign.run` | campaign job body | panic, ioerr (transient), delay |
//! | `jobs.diagnosis.run` | diagnosis job body | panic, ioerr (transient), delay |
//! | `jobs.worker.die` | worker pickup, outside panic isolation | panic (kills the worker; the pool respawns it), delay |
//! | `registry.compile` | inside the per-key compile slot | panic (typed `CompilePanicked`), ioerr (typed `CompileFailed`, slot stays retryable), delay |
//! | `snapshot.encode` | start of [`Snapshot::encode`](crate::snapshot::Snapshot::encode) | panic, delay |
//! | `snapshot.decode` | start of [`Snapshot::decode`](crate::snapshot::Snapshot::decode) | panic, ioerr (typed `Malformed`), delay |
//! | `snapshot.read.io` | after the file read in `read_file` | ioerr (typed `Io`), delay |
//! | `snapshot.write.tmp` | before the temp-file write | ioerr (typed `Io`), delay |
//! | `snapshot.write.fsync` | between temp write and fsync | ioerr (temp removed, target intact), delay |
//! | `snapshot.write.rename` | between fsync and the atomic rename | ioerr (temp **left behind** — simulated crash debris), delay |
//! | `store.scan.read` | per file during the recovery scan | ioerr (file is quarantined), delay |
//! | `net.accept` | per accepted TCP connection | ioerr (connection dropped before a handler spawns), delay |
//! | `net.frame.read` | before every frame read in a connection handler | ioerr (best-effort error frame, connection closes), delay |
//! | `net.frame.write` | before every response frame write | ioerr (write fails, connection closes), delay |
//! | `net.progress.poll` | every poll of a streamed `AwaitJob` | delay (stretches the stream cadence); ioerr ignored (poll retried) |

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed fail point injects when its trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FailAction {
    /// Unwind at the hit site with a message naming the point.
    Panic,
    /// Hand the hit site a typed [`InjectedError`] to route through its
    /// own error channel. Hit sites that retry classify these as
    /// transient.
    IoError,
    /// Sleep the calling thread for the given duration, then continue
    /// normally.
    Delay(Duration),
}

/// When an armed fail point injects. All counters are per point and
/// 1-based; the probabilistic trigger owns a seeded xorshift stream so a
/// fixed configuration and hit order replay the same schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the `n`-th hit.
    Nth(u64),
    /// Fire on every `n`-th hit (hits `n`, `2n`, `3n`, …).
    Every(u64),
    /// Fire on the first `n` hits.
    First(u64),
    /// Fire per hit with probability `p_millis / 1000`, from the seeded
    /// per-point stream.
    Probability {
        /// Probability in thousandths (0..=1000).
        p_millis: u32,
        /// Seed of the point's private xorshift stream.
        seed: u64,
    },
}

/// A fully specified fail-point arm: what to inject and when.
#[derive(Debug, Clone, PartialEq)]
pub struct FailConfig {
    /// The injected fault.
    pub action: FailAction,
    /// When it fires.
    pub trigger: Trigger,
}

impl FailConfig {
    /// An always-firing arm of `action`.
    #[must_use]
    pub fn always(action: FailAction) -> Self {
        FailConfig {
            action,
            trigger: Trigger::Always,
        }
    }

    /// An arm of `action` firing only on the `n`-th hit.
    #[must_use]
    pub fn nth(action: FailAction, n: u64) -> Self {
        FailConfig {
            action,
            trigger: Trigger::Nth(n),
        }
    }

    /// An arm of `action` firing with probability `p` (clamped to
    /// `[0, 1]`) per hit, from a stream seeded with `seed`.
    #[must_use]
    pub fn probability(action: FailAction, p: f64, seed: u64) -> Self {
        let p_millis = (p.clamp(0.0, 1.0) * 1000.0).round() as u32;
        FailConfig {
            action,
            trigger: Trigger::Probability { p_millis, seed },
        }
    }
}

/// The error value an [`FailAction::IoError`] injection hands the hit
/// site. Carries the point name so failure reports say exactly which
/// injection produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// Name of the fail point that fired.
    pub point: &'static str,
}

impl std::fmt::Display for InjectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at fail point '{}'", self.point)
    }
}

impl std::error::Error for InjectedError {}

impl From<InjectedError> for std::io::Error {
    fn from(e: InjectedError) -> Self {
        std::io::Error::new(std::io::ErrorKind::Interrupted, e.to_string())
    }
}

/// Per-point runtime state: the arm plus hit/fire counters and the
/// private random stream.
struct PointState {
    config: FailConfig,
    hits: u64,
    fired: u64,
    rng: u64,
}

impl PointState {
    fn new(config: FailConfig) -> Self {
        let rng = match config.trigger {
            Trigger::Probability { seed, .. } => seed | 1,
            _ => 1,
        };
        PointState {
            config,
            hits: 0,
            fired: 0,
            rng,
        }
    }

    /// Evaluate one hit: advance the counters and return the action to
    /// perform, if the trigger fires.
    fn on_hit(&mut self) -> Option<FailAction> {
        self.hits += 1;
        let fire = match self.config.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => self.hits == n,
            Trigger::Every(n) => n != 0 && self.hits % n == 0,
            Trigger::First(n) => self.hits <= n,
            Trigger::Probability { p_millis, .. } => {
                // xorshift64: deterministic per-point stream.
                let mut x = self.rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng = x;
                (x % 1000) < u64::from(p_millis)
            }
        };
        if fire {
            self.fired += 1;
            Some(self.config.action.clone())
        } else {
            None
        }
    }
}

/// Number of currently armed points — the fast-path gate. Zero means
/// [`hit`] returns after one relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

static ENV_INIT: Once = Once::new();

fn table() -> MutexGuard<'static, HashMap<&'static str, PointState>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, PointState>>> = OnceLock::new();
    // A panic injected *while the table lock is held* never happens (the
    // lock is released before the action runs), but a panicking test
    // thread can still poison the lock between hits; recover rather than
    // cascade.
    TABLE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Leak a point name into a `'static` key. Point names form a small
/// fixed catalog, so the leak is bounded.
fn intern(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// Arm `point` with `config`, replacing any previous arm (and resetting
/// its counters).
pub fn configure(point: &str, config: FailConfig) {
    let mut t = table();
    if t.insert(intern(point), PointState::new(config)).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm `point`. Hits become free again once every point is disarmed.
pub fn remove(point: &str) {
    let mut t = table();
    if t.remove(point).is_some() {
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarm every point.
pub fn clear() {
    let mut t = table();
    let n = t.len();
    t.clear();
    ARMED.fetch_sub(n, Ordering::SeqCst);
}

/// How many times `point` has fired since it was (last) armed.
#[must_use]
pub fn fired(point: &str) -> u64 {
    table().get(point).map_or(0, |s| s.fired)
}

/// How many times `point` has been hit since it was (last) armed.
#[must_use]
pub fn hits(point: &str) -> u64 {
    table().get(point).map_or(0, |s| s.hits)
}

/// RAII arm: [`configure`]s on construction, [`remove`]s on drop.
/// Chaos tests hold one per armed point so a failing assertion cannot
/// leak an armed point into the next test.
pub struct Guard {
    point: &'static str,
}

impl Drop for Guard {
    fn drop(&mut self) {
        remove(self.point);
    }
}

/// Arm `point` for the lifetime of the returned [`Guard`].
#[must_use]
pub fn scoped(point: &str, config: FailConfig) -> Guard {
    let point = intern(point);
    configure(point, config);
    Guard { point }
}

/// Parse a `SINW_FAILPOINTS`-style specification. Returns the parsed
/// arms or a description of the first syntax error.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed clause.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, FailConfig)>, String> {
    let mut out = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (name, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause '{clause}' has no '=': expected point=action"))?;
        let (action_str, trigger_str) = match rest.split_once('@') {
            Some((a, t)) => (a, Some(t)),
            None => (rest, None),
        };
        let action = match action_str
            .split_once(':')
            .map_or((action_str, None), |(a, arg)| (a, Some(arg)))
        {
            ("panic", None) => FailAction::Panic,
            ("ioerr", None) => FailAction::IoError,
            ("delay", Some(ms)) => {
                let ms: u64 = ms.parse().map_err(|_| {
                    format!("delay '{ms}' in '{clause}' is not a millisecond count")
                })?;
                FailAction::Delay(Duration::from_millis(ms))
            }
            _ => {
                return Err(format!(
                    "action '{action_str}' in '{clause}' is not panic | ioerr | delay:<ms>"
                ))
            }
        };
        let trigger = match trigger_str {
            None => Trigger::Always,
            Some(t) => {
                let mut parts = t.split(':');
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some("always"), None, ..) => Trigger::Always,
                    (Some("nth"), Some(n), None, _) => Trigger::Nth(
                        n.parse()
                            .map_err(|_| format!("nth '{n}' in '{clause}' is not a count"))?,
                    ),
                    (Some("every"), Some(n), None, _) => Trigger::Every(
                        n.parse()
                            .map_err(|_| format!("every '{n}' in '{clause}' is not a count"))?,
                    ),
                    (Some("first"), Some(n), None, _) => Trigger::First(
                        n.parse()
                            .map_err(|_| format!("first '{n}' in '{clause}' is not a count"))?,
                    ),
                    (Some("prob"), Some(p), Some(seed), None) => {
                        let p: f64 = p
                            .parse()
                            .map_err(|_| format!("prob '{p}' in '{clause}' is not a number"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("prob {p} in '{clause}' is outside [0, 1]"));
                        }
                        let seed: u64 = seed.parse().map_err(|_| {
                            format!("seed '{seed}' in '{clause}' is not an integer")
                        })?;
                        FailConfig::probability(FailAction::Panic, p, seed).trigger
                    }
                    _ => {
                        return Err(format!(
                            "trigger '{t}' in '{clause}' is not always | nth:<k> | every:<k> | \
                             first:<n> | prob:<p>:<seed>"
                        ))
                    }
                }
            }
        };
        out.push((name.to_string(), FailConfig { action, trigger }));
    }
    Ok(out)
}

/// Arm every point named in `spec` (the `SINW_FAILPOINTS` grammar).
///
/// # Errors
///
/// Returns the parse error of the first malformed clause; no point is
/// armed in that case.
pub fn configure_from_spec(spec: &str) -> Result<usize, String> {
    let arms = parse_spec(spec)?;
    let n = arms.len();
    for (name, config) in arms {
        configure(&name, config);
    }
    Ok(n)
}

/// One-time `SINW_FAILPOINTS` environment initialisation, run on the
/// first hit. A malformed specification panics loudly — silently
/// ignoring an operator's chaos schedule would fake robustness.
fn env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("SINW_FAILPOINTS") {
            if let Err(e) = configure_from_spec(&spec) {
                panic!("SINW_FAILPOINTS is malformed: {e}");
            }
        }
    });
}

/// Evaluate a hit on `point`.
///
/// The production fast path — no `SINW_FAILPOINTS`, nothing armed — is
/// one relaxed atomic load and a branch. When the point is armed and its
/// trigger fires, a [`FailAction::Panic`] unwinds here, a
/// [`FailAction::Delay`] sleeps here and then returns `Ok(())`, and a
/// [`FailAction::IoError`] returns the typed [`InjectedError`] for the
/// caller to route.
///
/// # Errors
///
/// Returns [`InjectedError`] when an armed `IoError` injection fires.
///
/// # Panics
///
/// Panics (by design) when an armed `Panic` injection fires.
#[inline]
pub fn hit(point: &'static str) -> Result<(), InjectedError> {
    env_init();
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    hit_slow(point)
}

#[cold]
fn hit_slow(point: &'static str) -> Result<(), InjectedError> {
    let action = {
        let mut t = table();
        match t.get_mut(point) {
            Some(state) => state.on_hit(),
            None => None,
        }
    };
    match action {
        None => Ok(()),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FailAction::IoError) => Err(InjectedError { point }),
        Some(FailAction::Panic) => panic!("fail point '{point}' injected a panic"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module mutate process-global fail-point state, so
    /// they serialize on one lock (shared with nothing else: unit tests
    /// use their own point names).
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_points_are_free_and_ok() {
        let _s = serial();
        assert_eq!(hit("unit.nonexistent"), Ok(()));
        assert_eq!(fired("unit.nonexistent"), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _s = serial();
        let _g = scoped("unit.nth", FailConfig::nth(FailAction::IoError, 3));
        assert!(hit("unit.nth").is_ok());
        assert!(hit("unit.nth").is_ok());
        assert!(hit("unit.nth").is_err());
        assert!(hit("unit.nth").is_ok());
        assert_eq!(fired("unit.nth"), 1);
        assert_eq!(hits("unit.nth"), 4);
    }

    #[test]
    fn every_and_first_triggers_count_correctly() {
        let _s = serial();
        let _g = scoped(
            "unit.every",
            FailConfig {
                action: FailAction::IoError,
                trigger: Trigger::Every(2),
            },
        );
        let pattern: Vec<bool> = (0..6).map(|_| hit("unit.every").is_err()).collect();
        assert_eq!(pattern, [false, true, false, true, false, true]);
        let _g2 = scoped(
            "unit.first",
            FailConfig {
                action: FailAction::IoError,
                trigger: Trigger::First(2),
            },
        );
        let pattern: Vec<bool> = (0..4).map(|_| hit("unit.first").is_err()).collect();
        assert_eq!(pattern, [true, true, false, false]);
    }

    #[test]
    fn probability_stream_is_deterministic() {
        let _s = serial();
        let run = || -> Vec<bool> {
            let _g = scoped(
                "unit.prob",
                FailConfig::probability(FailAction::IoError, 0.5, 0xDEAD_BEEF),
            );
            (0..64).map(|_| hit("unit.prob").is_err()).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same schedule");
        let fired: usize = a.iter().filter(|x| **x).count();
        assert!((10..=54).contains(&fired), "p=0.5 fired {fired}/64 times");
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        let _s = serial();
        let _g = scoped("unit.panic", FailConfig::always(FailAction::Panic));
        let result = std::panic::catch_unwind(|| {
            let _ = hit("unit.panic");
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unit.panic"), "panic message names the point");
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _s = serial();
        let arms = parse_spec(
            "a=panic; b=ioerr@nth:3 ;c=delay:25@every:4;d=ioerr@prob:0.25:99;e=panic@first:2",
        )
        .expect("valid spec");
        assert_eq!(arms.len(), 5);
        assert_eq!(
            arms[0],
            (String::from("a"), FailConfig::always(FailAction::Panic))
        );
        assert_eq!(arms[1].1, FailConfig::nth(FailAction::IoError, 3));
        assert_eq!(
            arms[2].1,
            FailConfig {
                action: FailAction::Delay(Duration::from_millis(25)),
                trigger: Trigger::Every(4),
            }
        );
        assert_eq!(
            arms[3].1.trigger,
            Trigger::Probability {
                p_millis: 250,
                seed: 99
            }
        );
        assert_eq!(
            arms[4].1,
            FailConfig {
                action: FailAction::Panic,
                trigger: Trigger::First(2),
            }
        );
    }

    #[test]
    fn spec_errors_are_descriptive() {
        let _s = serial();
        assert!(parse_spec("nonsense").unwrap_err().contains("no '='"));
        assert!(parse_spec("a=frob").unwrap_err().contains("frob"));
        assert!(parse_spec("a=delay:xs").unwrap_err().contains("delay"));
        assert!(parse_spec("a=panic@prob:1.5:3")
            .unwrap_err()
            .contains("outside"));
        assert!(parse_spec("a=panic@sometimes")
            .unwrap_err()
            .contains("sometimes"));
    }
}

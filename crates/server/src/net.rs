//! The TCP face of the service: [`NetServer`] binds the wire protocol
//! ([`crate::wire`]) to the existing in-process pieces, and
//! [`NetClient`] is the matching std-only client.
//!
//! The server **composes** rather than re-derives: circuits land in the
//! byte-bounded [`CircuitRegistry`] (its typed backpressure becomes
//! [`ErrorCode::Oversized`] frames), a configured [`SnapshotStore`]
//! warm-starts the registry on boot and persists every registration,
//! jobs run on the bounded [`JobEngine`] with per-request timeouts
//! mapped onto [`JobPolicy`] deadlines, and per-client quotas live in
//! the [`SessionManager`].
//!
//! ## Connection lifecycle
//!
//! Each accepted connection gets a session and a handler thread running
//! a strict request → response loop. The socket read timeout doubles as
//! the idle tick: on every tick the handler closes the connection when
//! it has been idle past the session `idle_timeout` with no job in
//! flight, or when the server is draining and its last job has
//! finished. A framing error (bad magic, checksum mismatch, truncation)
//! desynchronizes the stream, so the handler sends a best-effort
//! [`ErrorCode::BadFrame`] frame and closes — the *server* stays
//! serviceable for every other connection. A well-framed but malformed
//! or unknown request only costs an error frame; the connection keeps
//! serving.
//!
//! ## Drain protocol
//!
//! [`NetServer::shutdown`] (also run on drop) flips the drain flag,
//! stops the accept loop, and joins every handler: in-flight jobs
//! finish and stream their outcomes, new `SubmitJob` requests are
//! refused with [`ErrorCode::Draining`], idle connections close at
//! their next tick, and finally the job engine drains.
//!
//! ## Fail points
//!
//! Every server-side I/O edge is named: `net.accept` (ioerr drops the
//! freshly accepted connection), `net.frame.read` (ioerr poisons the
//! read, closing the connection), `net.frame.write` (ioerr fails the
//! response write), and `net.progress.poll` (delay stretches the
//! streaming cadence; ioerr is ignored — polling is retried).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sinw_atpg::tpg::AtpgConfig;

use crate::failpoint;
use crate::jobs::{JobEngine, JobPolicy, JobSpec};
use crate::registry::{CircuitRegistry, RegistryError};
use crate::session::{SessionError, SessionLimits, SessionManager};
use crate::snapshot::Snapshot;
use crate::store::SnapshotStore;
use crate::wire::{
    self, ErrorCode, FrameEvent, Request, Response, WireError, WireJob, WireOutcome, WireStats,
};

/// Server configuration: pool sizes, quotas, persistence, and protocol
/// knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Job-engine worker threads.
    pub workers: usize,
    /// Registry byte capacity ([`CircuitRegistry::with_capacity_bytes`]).
    pub registry_capacity: usize,
    /// Per-session quotas.
    pub limits: SessionLimits,
    /// When set, a [`SnapshotStore`] opens here: the registry
    /// warm-starts from it on boot and every successful registration is
    /// persisted to it.
    pub store_dir: Option<PathBuf>,
    /// Cap on a single frame's payload, enforced before allocation.
    pub max_frame_payload: u64,
    /// Socket read timeout — the handler's idle/drain tick period.
    pub read_poll: Duration,
    /// Poll period of the `AwaitJob` progress stream.
    pub progress_poll: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 2,
            registry_capacity: 256 * 1024 * 1024,
            limits: SessionLimits::default(),
            store_dir: None,
            max_frame_payload: wire::DEFAULT_MAX_PAYLOAD,
            read_poll: Duration::from_millis(25),
            progress_poll: Duration::from_millis(1),
        }
    }
}

/// Everything the accept loop and the handlers share.
struct ServerShared {
    config: NetConfig,
    registry: CircuitRegistry,
    engine: JobEngine,
    sessions: SessionManager,
    store: Option<SnapshotStore>,
    draining: AtomicBool,
    jobs_submitted: AtomicU64,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running TCP service. Dropping (or calling
/// [`shutdown`](NetServer::shutdown)) drains gracefully.
pub struct NetServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

impl NetServer {
    /// Bind `addr` and start serving: open + warm-start the snapshot
    /// store when configured, spawn the accept loop, and return.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the store's recovery-scan
    /// failure, as `std::io::Error`.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let registry = CircuitRegistry::with_capacity_bytes(config.registry_capacity);
        let store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let (store, _recovery) = SnapshotStore::open(dir).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                store.warm_start(&registry).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                Some(store)
            }
        };

        let shared = Arc::new(ServerShared {
            engine: JobEngine::new(config.workers.max(1)),
            sessions: SessionManager::new(config.limits),
            registry,
            store,
            draining: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
            config,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(String::from("sinw-net-accept"))
            .spawn(move || accept_loop(&accept_shared, &listener))
            .expect("spawn accept thread");

        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's registry — test assertions read its counters.
    #[must_use]
    pub fn registry(&self) -> &CircuitRegistry {
        &self.shared.registry
    }

    /// The server's session table.
    #[must_use]
    pub fn sessions(&self) -> &SessionManager {
        &self.shared.sessions
    }

    /// Jobs accepted over the server's lifetime.
    #[must_use]
    pub fn jobs_submitted(&self) -> u64 {
        self.shared.jobs_submitted.load(Ordering::SeqCst)
    }

    /// Graceful drain: refuse new accepts and new jobs, let in-flight
    /// jobs finish and stream their outcomes, join every handler, then
    /// drain the job engine. Returns when the server is fully stopped.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        loop {
            let handles = {
                let mut table = self
                    .shared
                    .handlers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *table)
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        // The engine itself drains when `shared` drops (handlers are
        // joined, so this is the last strong reference).
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Accept connections until the drain flag flips. Nonblocking accept +
/// sleep keeps the drain check responsive without busy-waiting.
fn accept_loop(shared: &Arc<ServerShared>, listener: &TcpListener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if failpoint::hit("net.accept").is_err() {
                    // Injected accept failure: the connection is dropped
                    // on the floor; the client sees a clean close.
                    drop(stream);
                    continue;
                }
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(String::from("sinw-net-conn"))
                    .spawn(move || handle_connection(&conn_shared, stream))
                    .expect("spawn connection handler");
                shared
                    .handlers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Closes the session on every exit path, panics included — a handler
/// thread dying must not leak its session.
struct SessionCloser<'a> {
    sessions: &'a SessionManager,
    id: u64,
}

impl Drop for SessionCloser<'_> {
    fn drop(&mut self) {
        self.sessions.close(self.id);
    }
}

/// Send one response, honoring the `net.frame.write` fail point.
fn send(stream: &mut TcpStream, response: &Response) -> Result<(), WireError> {
    failpoint::hit("net.frame.write").map_err(|e| WireError::Io {
        kind: std::io::ErrorKind::Interrupted,
        detail: e.to_string(),
    })?;
    let (ty, payload) = response.encode();
    wire::write_frame(stream, ty, &payload)
}

fn error_response(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn session_error_response(e: &SessionError) -> Response {
    let code = match e {
        SessionError::ByteQuota { .. } => ErrorCode::ByteQuota,
        SessionError::JobQuota { .. } => ErrorCode::JobQuota,
        SessionError::UnknownJob { .. } => ErrorCode::UnknownJob,
        SessionError::UnknownSession { .. } => ErrorCode::BadFrame,
    };
    error_response(code, e.to_string())
}

fn registry_error_response(e: &RegistryError) -> Response {
    let code = match e {
        RegistryError::Parse(_) => ErrorCode::Parse,
        RegistryError::CompilePanicked { .. } | RegistryError::CompileFailed { .. } => {
            ErrorCode::CompileFailed
        }
        RegistryError::Oversized { .. } => ErrorCode::Oversized,
    };
    error_response(code, e.to_string())
}

/// One connection's request → response loop.
fn handle_connection(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.read_poll))
        .is_err()
    {
        return;
    }
    let session = shared.sessions.open();
    let _closer = SessionCloser {
        sessions: &shared.sessions,
        id: session,
    };
    let mut last_active = Instant::now();

    loop {
        if failpoint::hit("net.frame.read").is_err() {
            let _ = send(
                &mut stream,
                &error_response(ErrorCode::BadFrame, "injected read fault"),
            );
            return;
        }
        match wire::read_frame(&mut stream, shared.config.max_frame_payload) {
            Ok(FrameEvent::Idle) => {
                let in_flight = shared.sessions.in_flight(session);
                if shared.draining.load(Ordering::SeqCst) && in_flight == 0 {
                    return;
                }
                if in_flight == 0 && last_active.elapsed() >= shared.config.limits.idle_timeout {
                    return;
                }
            }
            Ok(FrameEvent::Closed) => return,
            Ok(FrameEvent::Frame {
                frame_type,
                payload,
            }) => {
                last_active = Instant::now();
                shared.sessions.touch(session);
                let served = match Request::decode(frame_type, &payload) {
                    Ok(request) => {
                        handle_request(shared, session, &mut stream, request, payload.len() as u64)
                    }
                    Err(e @ WireError::UnknownFrameType { .. }) => {
                        // Well-framed, just not a request we serve: the
                        // stream is still synchronized, so the
                        // connection keeps serving.
                        send(
                            &mut stream,
                            &error_response(ErrorCode::UnknownRequest, e.to_string()),
                        )
                    }
                    Err(e) => send(
                        &mut stream,
                        &error_response(ErrorCode::BadFrame, e.to_string()),
                    ),
                };
                if served.is_err() {
                    return;
                }
            }
            Err(e) => {
                // Framing violation or socket failure: the byte stream
                // can no longer be trusted. Best-effort typed error,
                // then close this connection (the server lives on).
                let _ = send(
                    &mut stream,
                    &error_response(ErrorCode::BadFrame, e.to_string()),
                );
                return;
            }
        }
    }
}

/// Serve one decoded request. `Err` means the response could not be
/// written and the connection must close.
fn handle_request(
    shared: &Arc<ServerShared>,
    session: u64,
    stream: &mut TcpStream,
    request: Request,
    payload_len: u64,
) -> Result<(), WireError> {
    match request {
        Request::RegisterBench { name, source } => {
            if let Err(e) = shared.sessions.check_bytes(session, payload_len) {
                return send(stream, &session_error_response(&e));
            }
            match shared.registry.register_bench(&name, &source) {
                Ok(artifact) => {
                    let _ = shared.sessions.charge_bytes(session, payload_len);
                    if let Some(store) = &shared.store {
                        // Persistence is best-effort: a failed save
                        // costs durability, not the registration.
                        let _ = store.save_artifact(&artifact);
                    }
                    send(
                        stream,
                        &Response::Registered {
                            key: artifact.key(),
                            approx_bytes: artifact.approx_bytes() as u64,
                        },
                    )
                }
                Err(e) => send(stream, &registry_error_response(&e)),
            }
        }
        Request::RegisterSnapshot { bytes } => {
            if let Err(e) = shared.sessions.check_bytes(session, payload_len) {
                return send(stream, &session_error_response(&e));
            }
            match Snapshot::decode(&bytes) {
                Ok(snapshot) => {
                    let artifact = shared.registry.insert(Arc::new(
                        crate::registry::CompiledCircuit::from_snapshot(snapshot),
                    ));
                    let _ = shared.sessions.charge_bytes(session, payload_len);
                    if let Some(store) = &shared.store {
                        let _ = store.save_artifact(&artifact);
                    }
                    send(
                        stream,
                        &Response::Registered {
                            key: artifact.key(),
                            approx_bytes: artifact.approx_bytes() as u64,
                        },
                    )
                }
                Err(e) => send(
                    stream,
                    &error_response(ErrorCode::SnapshotRejected, e.to_string()),
                ),
            }
        }
        Request::SubmitJob(job) => {
            if shared.draining.load(Ordering::SeqCst) {
                return send(
                    stream,
                    &error_response(ErrorCode::Draining, "server is draining"),
                );
            }
            if let Err(e) = shared.sessions.check_job_slot(session) {
                return send(stream, &session_error_response(&e));
            }
            let (key, timeout_ms) = match &job {
                WireJob::FaultSim {
                    key, timeout_ms, ..
                }
                | WireJob::Signatures {
                    key, timeout_ms, ..
                }
                | WireJob::Campaign {
                    key, timeout_ms, ..
                } => (*key, *timeout_ms),
            };
            let Some(compiled) = shared.registry.get(key) else {
                return send(
                    stream,
                    &error_response(
                        ErrorCode::UnknownKey,
                        format!("no circuit registered under key {key:#018x}"),
                    ),
                );
            };
            let n_pi = compiled.circuit().primary_inputs().len();
            let spec = match job {
                WireJob::FaultSim {
                    patterns,
                    drop_detected,
                    threads,
                    ..
                } => {
                    if patterns.iter().any(|p| p.len() != n_pi) {
                        return send(
                            stream,
                            &error_response(
                                ErrorCode::BadFrame,
                                format!("patterns must be {n_pi} bits wide for this circuit"),
                            ),
                        );
                    }
                    JobSpec::FaultSim {
                        compiled,
                        patterns: Arc::new(patterns),
                        drop_detected,
                        threads: (threads as usize).max(1),
                    }
                }
                WireJob::Signatures {
                    patterns, threads, ..
                } => {
                    if patterns.iter().any(|p| p.len() != n_pi) {
                        return send(
                            stream,
                            &error_response(
                                ErrorCode::BadFrame,
                                format!("patterns must be {n_pi} bits wide for this circuit"),
                            ),
                        );
                    }
                    JobSpec::Signatures {
                        compiled,
                        patterns: Arc::new(patterns),
                        threads: (threads as usize).max(1),
                    }
                }
                WireJob::Campaign { seed, .. } => JobSpec::Campaign {
                    compiled,
                    config: AtpgConfig {
                        seed,
                        ..AtpgConfig::default()
                    },
                },
            };
            let policy = if timeout_ms > 0 {
                JobPolicy::with_deadline(Duration::from_millis(timeout_ms))
            } else {
                JobPolicy::default()
            };
            let handle = shared.engine.submit_with(spec, policy);
            let job_id = handle.id();
            let _ = shared.sessions.attach_job(session, handle);
            shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
            send(stream, &Response::Submitted { job: job_id })
        }
        Request::JobProgress { job } => match shared.sessions.job(session, job) {
            Ok(handle) => {
                let p = handle.progress();
                send(
                    stream,
                    &Response::Progress {
                        job,
                        done: p.done as u64,
                        total: p.total as u64,
                        finished: handle.is_finished(),
                    },
                )
            }
            Err(e) => send(stream, &session_error_response(&e)),
        },
        Request::CancelJob { job } => match shared.sessions.job(session, job) {
            Ok(handle) => {
                handle.cancel();
                let p = handle.progress();
                send(
                    stream,
                    &Response::Progress {
                        job,
                        done: p.done as u64,
                        total: p.total as u64,
                        finished: handle.is_finished(),
                    },
                )
            }
            Err(e) => send(stream, &session_error_response(&e)),
        },
        Request::AwaitJob { job } => match shared.sessions.job(session, job) {
            Ok(handle) => {
                // Stream progress: one frame on entry, one per observed
                // change, then the terminal (finished) frame and the
                // outcome.
                let mut last = handle.progress();
                send(
                    stream,
                    &Response::Progress {
                        job,
                        done: last.done as u64,
                        total: last.total as u64,
                        finished: false,
                    },
                )?;
                while !handle.is_finished() {
                    // Delay injections stretch the cadence; an ioerr arm
                    // is ignored (polling is retried, not abandoned).
                    let _ = failpoint::hit("net.progress.poll");
                    std::thread::sleep(shared.config.progress_poll);
                    let p = handle.progress();
                    if p != last {
                        last = p;
                        send(
                            stream,
                            &Response::Progress {
                                job,
                                done: p.done as u64,
                                total: p.total as u64,
                                finished: false,
                            },
                        )?;
                    }
                }
                let outcome = handle.wait();
                let p = handle.progress();
                send(
                    stream,
                    &Response::Progress {
                        job,
                        done: p.done as u64,
                        total: p.total as u64,
                        finished: true,
                    },
                )?;
                send(
                    stream,
                    &Response::Outcome {
                        job,
                        outcome: WireOutcome::from_outcome(&outcome),
                    },
                )
            }
            Err(e) => send(stream, &session_error_response(&e)),
        },
        Request::FetchSnapshot { key } => match shared.registry.get(key) {
            Some(artifact) => send(
                stream,
                &Response::SnapshotBytes {
                    bytes: artifact.snapshot().encode(),
                },
            ),
            None => send(
                stream,
                &error_response(
                    ErrorCode::UnknownKey,
                    format!("no circuit registered under key {key:#018x}"),
                ),
            ),
        },
        Request::Stats => {
            let r = shared.registry.stats();
            send(
                stream,
                &Response::StatsReport(WireStats {
                    sessions: shared.sessions.len() as u64,
                    jobs_submitted: shared.jobs_submitted.load(Ordering::SeqCst),
                    hits: r.hits,
                    misses: r.misses,
                    compiles: r.compiles,
                    evictions: r.evictions,
                    entries: r.entries as u64,
                    bytes: r.bytes as u64,
                    capacity: r.capacity as u64,
                }),
            )
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (socket, framing, decode).
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The server's error class.
        code: ErrorCode,
        /// The server's detail message.
        message: String,
    },
    /// The server answered with a well-formed but unexpected response
    /// type.
    Protocol {
        /// What arrived instead.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A well-formed response of the wrong type — a protocol violation.
fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol {
        detail: format!("expected {wanted}, got {got:?}"),
    }
}

/// A blocking client for one service connection. Every method is one
/// request → response exchange ([`await_job`](NetClient::await_job)
/// additionally consumes the progress stream).
pub struct NetClient {
    stream: TcpStream,
    max_payload: u64,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient").finish_non_exhaustive()
    }
}

impl NetClient {
    /// Connect to a [`NetServer`] with the default 120 s per-frame read
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on connect/configure failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(120))
    }

    /// Connect with a custom per-frame read timeout — the client's
    /// bound on a hung server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on connect/configure failure.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(WireError::from)?;
        Ok(NetClient {
            stream,
            max_payload: wire::DEFAULT_MAX_PAYLOAD,
        })
    }

    fn request(&mut self, request: &Request) -> Result<(), ClientError> {
        let (ty, payload) = request.encode();
        wire::write_frame(&mut self.stream, ty, &payload)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        match wire::read_frame(&mut self.stream, self.max_payload)? {
            FrameEvent::Frame {
                frame_type,
                payload,
            } => Ok(Response::decode(frame_type, &payload)?),
            FrameEvent::Closed => Err(ClientError::Protocol {
                detail: String::from("server closed the connection mid-exchange"),
            }),
            FrameEvent::Idle => Err(ClientError::Protocol {
                detail: String::from("timed out waiting for a response frame"),
            }),
        }
    }

    /// One non-streaming exchange, with error frames lifted to
    /// [`ClientError::Server`].
    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.request(request)?;
        match self.recv()? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Register a `.bench` source; returns `(key, approx_bytes)`.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed parse / compile / quota /
    /// capacity error.
    pub fn register_bench(&mut self, name: &str, source: &str) -> Result<(u64, u64), ClientError> {
        match self.exchange(&Request::RegisterBench {
            name: String::from(name),
            source: String::from(source),
        })? {
            Response::Registered { key, approx_bytes } => Ok((key, approx_bytes)),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Register a pre-compiled `.sinw` snapshot byte string; returns
    /// `(key, approx_bytes)`.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed rejection / quota error.
    pub fn register_snapshot(&mut self, bytes: Vec<u8>) -> Result<(u64, u64), ClientError> {
        match self.exchange(&Request::RegisterSnapshot { bytes })? {
            Response::Registered { key, approx_bytes } => Ok((key, approx_bytes)),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Submit a job; returns its id.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed quota / unknown-key /
    /// draining error.
    pub fn submit(&mut self, job: WireJob) -> Result<u64, ClientError> {
        match self.exchange(&Request::SubmitJob(job))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Poll a job's progress; returns `(done, total, finished)`.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed unknown-job error.
    pub fn progress(&mut self, job: u64) -> Result<(u64, u64, bool), ClientError> {
        match self.exchange(&Request::JobProgress { job })? {
            Response::Progress {
                done,
                total,
                finished,
                ..
            } => Ok((done, total, finished)),
            other => Err(unexpected("Progress", &other)),
        }
    }

    /// Cooperatively cancel a job; returns its progress at cancel time.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed unknown-job error.
    pub fn cancel(&mut self, job: u64) -> Result<(u64, u64, bool), ClientError> {
        match self.exchange(&Request::CancelJob { job })? {
            Response::Progress {
                done,
                total,
                finished,
                ..
            } => Ok((done, total, finished)),
            other => Err(unexpected("Progress", &other)),
        }
    }

    /// Block on a job, feeding every streamed `(done, total)`
    /// observation to `on_progress`, and return the terminal outcome.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed unknown-job error.
    pub fn await_job(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<WireOutcome, ClientError> {
        self.request(&Request::AwaitJob { job })?;
        loop {
            match self.recv()? {
                Response::Progress { done, total, .. } => on_progress(done, total),
                Response::Outcome { outcome, .. } => return Ok(outcome),
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(unexpected("Progress | Outcome", &other)),
            }
        }
    }

    /// Fetch the `.sinw` snapshot bytes of a registered circuit.
    ///
    /// # Errors
    ///
    /// Wire failures, or the server's typed unknown-key error.
    pub fn fetch_snapshot(&mut self, key: u64) -> Result<Vec<u8>, ClientError> {
        match self.exchange(&Request::FetchSnapshot { key })? {
            Response::SnapshotBytes { bytes } => Ok(bytes),
            other => Err(unexpected("SnapshotBytes", &other)),
        }
    }

    /// Fetch server counters.
    ///
    /// # Errors
    ///
    /// Wire failures.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::StatsReport(stats) => Ok(stats),
            other => Err(unexpected("StatsReport", &other)),
        }
    }

    /// Raw frame access for protocol tests: send arbitrary bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        use std::io::Write;
        self.stream.write_all(bytes).map_err(WireError::from)?;
        self.stream.flush().map_err(WireError::from)?;
        Ok(())
    }

    /// Half-close the write side, signalling EOF to the server while
    /// keeping the read side open — protocol tests use this to observe
    /// the server's close without waiting out an idle timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on socket failure.
    pub fn shutdown_write(&mut self) -> Result<(), ClientError> {
        self.stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(WireError::from)?;
        Ok(())
    }

    /// Raw frame access for protocol tests: read one frame event.
    ///
    /// # Errors
    ///
    /// The typed [`WireError`] of the failed read.
    pub fn recv_raw(&mut self) -> Result<FrameEvent, ClientError> {
        Ok(wire::read_frame(&mut self.stream, self.max_payload)?)
    }

    /// Drain the stream until the server closes it (protocol tests use
    /// this to observe a close after a poisoned frame). Returns how
    /// many complete frames arrived before the close, or the first hard
    /// error other than closure.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the stream idles out instead of
    /// closing.
    pub fn drain_until_closed(&mut self) -> Result<usize, ClientError> {
        let mut frames = 0usize;
        loop {
            match wire::read_frame(&mut self.stream, self.max_payload) {
                Ok(FrameEvent::Frame { .. }) => frames += 1,
                Ok(FrameEvent::Closed) => return Ok(frames),
                Ok(FrameEvent::Idle) => {
                    return Err(ClientError::Protocol {
                        detail: String::from("stream idled out instead of closing"),
                    })
                }
                // A reset counts as closed for this observation.
                Err(WireError::Io { .. }) => return Ok(frames),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

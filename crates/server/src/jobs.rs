//! The bounded job engine: a fixed worker pool multiplexing concurrent
//! ATPG-stack requests over shared compiled artifacts.
//!
//! A [`JobEngine`] owns `workers` OS threads and a FIFO queue of
//! [`JobSpec`]s. [`JobEngine::submit`] is non-blocking and returns a
//! [`JobHandle`] carrying per-job progress, cooperative cancellation,
//! and a blocking [`JobHandle::wait`]. [`JobEngine::shutdown`] (and
//! `Drop`) performs a **graceful drain**: no new submissions are
//! accepted, every job already queued still runs to completion, and the
//! worker threads are joined.
//!
//! ## Determinism
//!
//! Heavy jobs (fault simulation, signature capture) fan out internally
//! over the same work-stealing chunk queue
//! ([`sinw_atpg::steal::WorkQueue`]) as the PPSFP engines. The chunk
//! boundaries are a pure function of the fault-list length, each chunk
//! is simulated independently (per-fault detection and first-detection
//! credit do not depend on any other fault in the list), and the merge
//! walks chunks in index order — so a job's outcome is **bit-identical**
//! to the direct serial engine call on the whole fault list, no matter
//! how many threads ran it or how chunks migrated between them.
//!
//! ## Cancellation and progress
//!
//! Progress is counted in chunks ([`JobProgress`]). The cancel flag is
//! checked before every chunk claim; a cancelled job stops at the next
//! chunk boundary and resolves to [`JobOutcome::Cancelled`]. Campaign
//! and diagnosis jobs are single-chunk (the campaign engine owns its own
//! internal loop), so for them cancellation is only effective while the
//! job is still queued.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sinw_atpg::diagnose::{DiagnosisReport, FaultDictionary};
use sinw_atpg::faultsim::{
    capture_signatures_with_graph, simulate_faults_with_graph, FaultSimReport, SignatureMatrix,
};
use sinw_atpg::steal::WorkQueue;
use sinw_atpg::tpg::{AtpgConfig, AtpgEngine, AtpgReport};

use crate::registry::CompiledCircuit;

/// Fault-list chunk size for intra-job fan-out. Small enough that
/// progress and cancellation have real granularity on the workspace's
/// fixture circuits, large enough that per-chunk overhead is noise.
const JOB_CHUNK: usize = 32;

/// A unit of work for the engine. Compiled artifacts travel as
/// [`Arc`]s, so a thousand queued jobs against the same circuit share
/// one artifact.
#[derive(Clone)]
pub enum JobSpec {
    /// PPSFP fault simulation of the compiled circuit's collapsed
    /// representatives against a pattern set.
    FaultSim {
        /// The registry artifact to simulate.
        compiled: Arc<CompiledCircuit>,
        /// Patterns, one `bool` per primary input each.
        patterns: Arc<Vec<Vec<bool>>>,
        /// Drop faults after first detection.
        drop_detected: bool,
        /// Intra-job worker threads (clamped to ≥ 1).
        threads: usize,
    },
    /// Full per-fault × per-pattern × per-output signature capture over
    /// the collapsed representatives.
    Signatures {
        /// The registry artifact to capture against.
        compiled: Arc<CompiledCircuit>,
        /// Patterns, one `bool` per primary input each.
        patterns: Arc<Vec<Vec<bool>>>,
        /// Intra-job worker threads (clamped to ≥ 1).
        threads: usize,
    },
    /// A full ATPG campaign (random + deterministic phases) over the
    /// collapsed representatives.
    Campaign {
        /// The registry artifact to target.
        compiled: Arc<CompiledCircuit>,
        /// Campaign configuration (seed, phase limits, backtrack cap).
        config: AtpgConfig,
    },
    /// Dictionary lookup of an observed failure set.
    Diagnosis {
        /// The class-compressed dictionary to match against.
        dictionary: Arc<FaultDictionary>,
        /// Observed failing `(pattern, output)` probes.
        observations: Vec<(usize, usize)>,
    },
}

/// Terminal state of a job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Fault-simulation result (indices into the representative list).
    FaultSim(FaultSimReport),
    /// Captured signature matrix over the representative list.
    Signatures(SignatureMatrix),
    /// Campaign report.
    Campaign(AtpgReport),
    /// Diagnosis report.
    Diagnosis(DiagnosisReport),
    /// The job was cancelled before it finished.
    Cancelled,
    /// The job could not run (invalid request); never a panic.
    Failed(String),
}

/// Chunk-granularity progress of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Chunks finished so far.
    pub done: usize,
    /// Total chunks (0 until the job is picked up and sized).
    pub total: usize,
}

/// Shared state between a [`JobHandle`] and the worker running the job.
struct JobShared {
    done: AtomicUsize,
    total: AtomicUsize,
    cancel: AtomicBool,
    outcome: Mutex<Option<JobOutcome>>,
    finished: Condvar,
}

impl JobShared {
    fn new() -> Self {
        JobShared {
            done: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            outcome: Mutex::new(None),
            finished: Condvar::new(),
        }
    }

    fn finish(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().expect("job outcome lock");
        *slot = Some(outcome);
        self.finished.notify_all();
    }
}

/// The submitter's view of one job.
#[derive(Clone)]
pub struct JobHandle {
    id: u64,
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Engine-unique job id, in submission order.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current chunk-granularity progress.
    #[must_use]
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            done: self.shared.done.load(Ordering::SeqCst),
            total: self.shared.total.load(Ordering::SeqCst),
        }
    }

    /// Request cooperative cancellation. Queued jobs resolve to
    /// [`JobOutcome::Cancelled`] without running; running chunked jobs
    /// stop at the next chunk boundary.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether the job has reached a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.shared
            .outcome
            .lock()
            .expect("job outcome lock")
            .is_some()
    }

    /// Block until the job reaches a terminal state and return it.
    #[must_use]
    pub fn wait(&self) -> JobOutcome {
        let mut slot = self.shared.outcome.lock().expect("job outcome lock");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self
                .shared
                .finished
                .wait(slot)
                .expect("job outcome condvar");
        }
    }
}

/// Queue state guarded by one mutex: the pending jobs and the drain
/// flag. Storing `draining` *inside* the mutex (not a separate atomic)
/// closes the lost-wakeup window between a worker's emptiness check and
/// its condvar wait.
struct QueueState {
    jobs: VecDeque<(JobSpec, Arc<JobShared>)>,
    draining: bool,
}

struct EngineQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// A bounded pool of worker threads draining a FIFO job queue.
///
/// See the [module docs](self) for the determinism, progress, and
/// shutdown contracts.
pub struct JobEngine {
    queue: Arc<EngineQueue>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicUsize,
}

impl JobEngine {
    /// Start an engine with `workers` pool threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let queue = Arc::new(EngineQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|w| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("sinw-job-{w}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn job worker")
            })
            .collect();
        JobEngine {
            queue,
            workers: handles,
            next_id: AtomicUsize::new(0),
        }
    }

    /// Number of pool threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job (non-blocking) and return its handle.
    ///
    /// After [`JobEngine::shutdown`] has begun the engine accepts
    /// nothing new: the job resolves immediately to
    /// [`JobOutcome::Failed`] without entering the queue.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) as u64;
        let shared = Arc::new(JobShared::new());
        let handle = JobHandle {
            id,
            shared: Arc::clone(&shared),
        };
        {
            let mut state = self.queue.state.lock().expect("job queue lock");
            if state.draining {
                drop(state);
                shared.finish(JobOutcome::Failed(String::from(
                    "engine is draining; submission rejected",
                )));
                return handle;
            }
            state.jobs.push_back((spec, shared));
        }
        self.queue.ready.notify_one();
        handle
    }

    /// Graceful drain: stop accepting submissions, run every queued job
    /// to completion, and join the pool.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("job queue lock");
            state.draining = true;
        }
        self.queue.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(queue: &EngineQueue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("job queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.draining {
                    break None;
                }
                state = queue.ready.wait(state).expect("job queue condvar");
            }
        };
        match job {
            Some((spec, shared)) => {
                let outcome = if shared.cancel.load(Ordering::SeqCst) {
                    JobOutcome::Cancelled
                } else {
                    run_job(spec, &shared)
                };
                shared.finish(outcome);
            }
            None => return,
        }
    }
}

fn run_job(spec: JobSpec, shared: &JobShared) -> JobOutcome {
    match spec {
        JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected,
            threads,
        } => run_fault_sim(&compiled, &patterns, drop_detected, threads, shared),
        JobSpec::Signatures {
            compiled,
            patterns,
            threads,
        } => run_signatures(&compiled, &patterns, threads, shared),
        JobSpec::Campaign { compiled, config } => {
            shared.total.store(1, Ordering::SeqCst);
            let report = AtpgEngine::new(compiled.circuit(), config)
                .run(&compiled.collapsed().representatives);
            shared.done.store(1, Ordering::SeqCst);
            JobOutcome::Campaign(report)
        }
        JobSpec::Diagnosis {
            dictionary,
            observations,
        } => {
            shared.total.store(1, Ordering::SeqCst);
            for &(pattern, output) in &observations {
                if pattern >= dictionary.pattern_count() || output >= dictionary.output_count() {
                    return JobOutcome::Failed(format!(
                        "observation ({pattern}, {output}) outside the dictionary's \
                         {} x {} probe grid",
                        dictionary.pattern_count(),
                        dictionary.output_count()
                    ));
                }
            }
            let report = dictionary.diagnose(&observations);
            shared.done.store(1, Ordering::SeqCst);
            JobOutcome::Diagnosis(report)
        }
    }
}

/// Validate a pattern set against the compiled circuit before fan-out,
/// so malformed requests fail typed instead of panicking inside a pool
/// thread.
fn check_patterns(compiled: &CompiledCircuit, patterns: &[Vec<bool>]) -> Result<(), JobOutcome> {
    let n_pi = compiled.circuit().primary_inputs().len();
    for (k, p) in patterns.iter().enumerate() {
        if p.len() != n_pi {
            return Err(JobOutcome::Failed(format!(
                "pattern {k} has {} bits, circuit '{}' has {n_pi} primary inputs",
                p.len(),
                compiled.name()
            )));
        }
    }
    Ok(())
}

/// Fan a fault-list computation out over `threads` scoped threads
/// claiming [`JOB_CHUNK`]-sized chunks from a [`WorkQueue`], collecting
/// one result per chunk **in chunk-index order**. Returns `None` when
/// the job was cancelled mid-flight.
fn chunked<T: Send>(
    n_faults: usize,
    threads: usize,
    shared: &JobShared,
    run_chunk: impl Fn(std::ops::Range<usize>) -> T + Sync,
) -> Option<Vec<T>> {
    let threads = threads.max(1);
    let queue = WorkQueue::new(n_faults, threads, JOB_CHUNK);
    shared.total.store(queue.chunk_count(), Ordering::SeqCst);
    let slots: Vec<Mutex<Option<T>>> = (0..queue.chunk_count()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queue = &queue;
            let slots = &slots;
            let run_chunk = &run_chunk;
            scope.spawn(move || {
                while let Some(chunk) = queue.pop(w) {
                    if shared.cancel.load(Ordering::SeqCst) {
                        return;
                    }
                    let result = run_chunk(queue.item_range(chunk));
                    *slots[chunk].lock().expect("chunk slot lock") = Some(result);
                    shared.done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    if shared.cancel.load(Ordering::SeqCst) {
        return None;
    }
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        out.push(slot.into_inner().expect("chunk slot lock")?);
    }
    Some(out)
}

fn run_fault_sim(
    compiled: &CompiledCircuit,
    patterns: &[Vec<bool>],
    drop_detected: bool,
    threads: usize,
    shared: &JobShared,
) -> JobOutcome {
    if let Err(failed) = check_patterns(compiled, patterns) {
        return failed;
    }
    let faults = &compiled.collapsed().representatives;
    let Some(chunks) = chunked(faults.len(), threads, shared, |range| {
        let offset = range.start;
        let report = simulate_faults_with_graph(
            compiled.circuit(),
            compiled.graph(),
            &faults[range],
            patterns,
            drop_detected,
        );
        (offset, report)
    }) else {
        return JobOutcome::Cancelled;
    };
    // Chunk-order merge: indices shift by the chunk's offset (ascending
    // across chunks, so the merged index lists stay sorted) and
    // first-detection credit sums per pattern.
    let mut merged = FaultSimReport {
        detected: Vec::new(),
        undetected: Vec::new(),
        first_detections: vec![0usize; patterns.len()],
    };
    for (offset, report) in chunks {
        merged
            .detected
            .extend(report.detected.iter().map(|f| f + offset));
        merged
            .undetected
            .extend(report.undetected.iter().map(|f| f + offset));
        for (p, n) in report.first_detections.iter().enumerate() {
            merged.first_detections[p] += n;
        }
    }
    JobOutcome::FaultSim(merged)
}

fn run_signatures(
    compiled: &CompiledCircuit,
    patterns: &[Vec<bool>],
    threads: usize,
    shared: &JobShared,
) -> JobOutcome {
    if let Err(failed) = check_patterns(compiled, patterns) {
        return failed;
    }
    let faults = &compiled.collapsed().representatives;
    let Some(chunks) = chunked(faults.len(), threads, shared, |range| {
        capture_signatures_with_graph(
            compiled.circuit(),
            compiled.graph(),
            &faults[range],
            patterns,
        )
    }) else {
        return JobOutcome::Cancelled;
    };
    // Row-concatenate in chunk order; every chunk shares the pattern /
    // output geometry, so the packed words line up exactly.
    let n_outputs = compiled.circuit().primary_outputs().len();
    let mut bits = Vec::new();
    for chunk in &chunks {
        bits.extend_from_slice(chunk.bits());
    }
    match SignatureMatrix::from_raw_parts(faults.len(), patterns.len(), n_outputs, bits) {
        Ok(matrix) => JobOutcome::Signatures(matrix),
        Err(e) => JobOutcome::Failed(format!("signature merge rejected: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::compile_circuit;
    use sinw_atpg::faultsim::capture_signatures;
    use sinw_atpg::simulate_faults;
    use sinw_switch::gate::Circuit;

    fn patterns_for(circuit: &Circuit, count: usize) -> Vec<Vec<bool>> {
        let n_pi = circuit.primary_inputs().len();
        // Deterministic LCG-ish fill; no external randomness.
        let mut state = 0x5EED_0B1Au64;
        (0..count)
            .map(|_| {
                (0..n_pi)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fault_sim_job_matches_direct_serial_call() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 96));
        let reference = simulate_faults(
            compiled.circuit(),
            &compiled.collapsed().representatives,
            &patterns,
            true,
        );
        let engine = JobEngine::new(2);
        let handle = engine.submit(JobSpec::FaultSim {
            compiled: Arc::clone(&compiled),
            patterns: Arc::clone(&patterns),
            drop_detected: true,
            threads: 3,
        });
        match handle.wait() {
            JobOutcome::FaultSim(report) => assert_eq!(report, reference),
            other => panic!("unexpected outcome {other:?}"),
        }
        let progress = handle.progress();
        assert_eq!(progress.done, progress.total);
        assert!(progress.total >= 1);
        engine.shutdown();
    }

    #[test]
    fn signature_job_matches_direct_capture() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 40));
        let reference = capture_signatures(
            compiled.circuit(),
            &compiled.collapsed().representatives,
            &patterns,
        );
        let engine = JobEngine::new(2);
        let handle = engine.submit(JobSpec::Signatures {
            compiled,
            patterns,
            threads: 2,
        });
        match handle.wait() {
            JobOutcome::Signatures(matrix) => assert_eq!(matrix, reference),
            other => panic!("unexpected outcome {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn malformed_patterns_fail_typed() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let engine = JobEngine::new(1);
        let handle = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns: Arc::new(vec![vec![true; 3]]),
            drop_detected: false,
            threads: 1,
        });
        assert!(matches!(handle.wait(), JobOutcome::Failed(_)));
        engine.shutdown();
    }

    #[test]
    fn cancelled_before_pickup_never_runs() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 8));
        let engine = JobEngine::new(1);
        // Stuff the single worker with work, cancel a queued job before
        // it can be picked up. The first job may or may not finish first;
        // the cancelled one must never produce a result.
        let _busy = engine.submit(JobSpec::FaultSim {
            compiled: Arc::clone(&compiled),
            patterns: Arc::clone(&patterns),
            drop_detected: false,
            threads: 1,
        });
        let victim = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected: false,
            threads: 1,
        });
        victim.cancel();
        match victim.wait() {
            JobOutcome::Cancelled | JobOutcome::FaultSim(_) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let engine = JobEngine::new(1);
        // Reach into drain without consuming: drop the engine, then use a
        // fresh one mid-drain is not observable from outside, so instead
        // assert the documented behaviour through the draining flag.
        {
            let mut state = engine.queue.state.lock().expect("queue lock");
            state.draining = true;
        }
        let handle = engine.submit(JobSpec::Diagnosis {
            dictionary: Arc::new(sinw_atpg::FaultDictionary::from_signatures(
                &capture_signatures(
                    compiled.circuit(),
                    &compiled.collapsed().representatives,
                    &patterns_for(compiled.circuit(), 4),
                ),
            )),
            observations: vec![],
        });
        assert!(matches!(handle.wait(), JobOutcome::Failed(_)));
        // Clear the flag so Drop's drain can join the (still waiting)
        // workers normally.
        engine.queue.ready.notify_all();
    }
}

//! The bounded job engine: a fixed worker pool multiplexing concurrent
//! ATPG-stack requests over shared compiled artifacts — with panic
//! isolation, deadlines, and bounded retries.
//!
//! A [`JobEngine`] owns `workers` OS threads and a FIFO queue of
//! [`JobSpec`]s. [`JobEngine::submit`] is non-blocking and returns a
//! [`JobHandle`] carrying per-job progress, cooperative cancellation,
//! and blocking [`JobHandle::wait`] / bounded
//! [`JobHandle::wait_timeout`]. [`JobEngine::shutdown`] (and `Drop`)
//! performs a **graceful drain**: no new submissions are accepted, every
//! job already queued still runs to completion, and the worker threads
//! are joined.
//!
//! ## Fault isolation
//!
//! Every job body runs under `catch_unwind`: a panic (a bug, or one
//! injected through the [`jobs.*`](crate::failpoint) fail points)
//! becomes a typed [`JobOutcome::Failed`] and the worker survives to
//! take the next job. Should a worker thread nonetheless die (the
//! `jobs.worker.die` fail point models this deliberately outside the
//! isolation boundary), two guards contain the damage: the in-flight
//! job is resolved to `Failed` rather than hanging its waiters, and the
//! pool **respawns** a replacement worker ([`JobEngine::respawns`]
//! counts them) so capacity never decays.
//!
//! ## Deadlines and retries
//!
//! [`JobEngine::submit_with`] attaches a [`JobPolicy`]: an optional
//! deadline (measured from submission; enforced cooperatively at the
//! same chunk-claim boundaries as cancellation, resolving to
//! [`JobOutcome::TimedOut`]) and a bounded retry budget with exponential
//! backoff for **transient** failures — injected I/O faults from the
//! fail-point framework. Panics and validation failures are permanent
//! and never retried. Campaign and diagnosis jobs are single-chunk (the
//! campaign engine owns its own internal loop), so for them deadline
//! and cancellation take effect at pickup and between retries only.
//!
//! ## Determinism
//!
//! Heavy jobs (fault simulation, signature capture) fan out internally
//! over the same work-stealing chunk queue
//! ([`sinw_atpg::steal::WorkQueue`]) as the PPSFP engines. The chunk
//! boundaries are a pure function of the fault-list length, each chunk
//! is simulated independently (per-fault detection and first-detection
//! credit do not depend on any other fault in the list), and the merge
//! walks chunks in index order — so a job's outcome is **bit-identical**
//! to the direct serial engine call on the whole fault list, no matter
//! how many threads ran it, how chunks migrated between them, or how
//! many transient-failure retries preceded the successful attempt.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sinw_atpg::diagnose::{DiagnosisReport, FaultDictionary};
use sinw_atpg::faultsim::{
    capture_signatures_with_graph, simulate_faults_with_graph, FaultSimReport, SignatureMatrix,
};
use sinw_atpg::steal::WorkQueue;
use sinw_atpg::tpg::{AtpgConfig, AtpgEngine, AtpgReport};

use crate::failpoint::{self, InjectedError};
use crate::registry::{panic_reason, CompiledCircuit};

/// Fault-list chunk size for intra-job fan-out. Small enough that
/// progress, cancellation, and deadlines have real granularity on the
/// workspace's fixture circuits, large enough that per-chunk overhead is
/// noise.
const JOB_CHUNK: usize = 32;

/// Ceiling on a single retry backoff sleep, whatever the exponential
/// schedule asks for.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Poison-tolerant lock: a panicking job must never wedge the engine.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unit of work for the engine. Compiled artifacts travel as
/// [`Arc`]s, so a thousand queued jobs against the same circuit share
/// one artifact.
#[derive(Clone)]
pub enum JobSpec {
    /// PPSFP fault simulation of the compiled circuit's collapsed
    /// representatives against a pattern set.
    FaultSim {
        /// The registry artifact to simulate.
        compiled: Arc<CompiledCircuit>,
        /// Patterns, one `bool` per primary input each.
        patterns: Arc<Vec<Vec<bool>>>,
        /// Drop faults after first detection.
        drop_detected: bool,
        /// Intra-job worker threads (clamped to ≥ 1).
        threads: usize,
    },
    /// Full per-fault × per-pattern × per-output signature capture over
    /// the collapsed representatives.
    Signatures {
        /// The registry artifact to capture against.
        compiled: Arc<CompiledCircuit>,
        /// Patterns, one `bool` per primary input each.
        patterns: Arc<Vec<Vec<bool>>>,
        /// Intra-job worker threads (clamped to ≥ 1).
        threads: usize,
    },
    /// A full ATPG campaign (random + deterministic phases) over the
    /// collapsed representatives.
    Campaign {
        /// The registry artifact to target.
        compiled: Arc<CompiledCircuit>,
        /// Campaign configuration (seed, phase limits, backtrack cap).
        config: AtpgConfig,
    },
    /// Dictionary lookup of an observed failure set.
    Diagnosis {
        /// The class-compressed dictionary to match against.
        dictionary: Arc<FaultDictionary>,
        /// Observed failing `(pattern, output)` probes.
        observations: Vec<(usize, usize)>,
    },
}

/// Terminal state of a job. Every accepted job reaches exactly one of
/// these — panics, injected faults, deadlines, and worker deaths
/// included.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Fault-simulation result (indices into the representative list).
    FaultSim(FaultSimReport),
    /// Captured signature matrix over the representative list.
    Signatures(SignatureMatrix),
    /// Campaign report.
    Campaign(AtpgReport),
    /// Diagnosis report.
    Diagnosis(DiagnosisReport),
    /// The job was cancelled before it finished.
    Cancelled,
    /// The job's [`JobPolicy`] deadline expired before it finished.
    TimedOut,
    /// The job could not produce a result: invalid request, a panic
    /// isolated by the engine, or a transient fault that outlived its
    /// retry budget. Never an unwound worker.
    Failed {
        /// What went wrong, including the panic message or injected
        /// fault name where applicable.
        reason: String,
    },
}

/// Per-job execution policy attached at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Wall-clock budget measured from submission. Expiry is enforced
    /// cooperatively at pickup, at every chunk claim, and between
    /// retries; an expired job resolves to [`JobOutcome::TimedOut`].
    pub deadline: Option<Duration>,
    /// How many times a **transient** failure (an injected I/O fault)
    /// may be retried before it hardens into [`JobOutcome::Failed`].
    pub max_retries: u32,
    /// Base backoff slept before retry `n` as `retry_backoff << (n-1)`,
    /// capped at one second.
    pub retry_backoff: Duration,
}

impl Default for JobPolicy {
    /// No deadline, no retries: the historical `submit` behaviour.
    fn default() -> Self {
        JobPolicy {
            deadline: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(5),
        }
    }
}

impl JobPolicy {
    /// A policy with only a deadline set.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        JobPolicy {
            deadline: Some(deadline),
            ..Default::default()
        }
    }

    /// A policy with only a retry budget set.
    #[must_use]
    pub fn with_retries(max_retries: u32, retry_backoff: Duration) -> Self {
        JobPolicy {
            deadline: None,
            max_retries,
            retry_backoff,
        }
    }
}

/// Chunk-granularity progress of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Chunks finished so far (resets when a retry re-runs the job).
    pub done: usize,
    /// Total chunks (0 until the job is picked up and sized).
    pub total: usize,
}

/// Shared state between a [`JobHandle`] and the worker running the job.
struct JobShared {
    done: AtomicUsize,
    total: AtomicUsize,
    cancel: AtomicBool,
    attempts: AtomicUsize,
    /// Absolute expiry instant, fixed at submission.
    deadline: Option<Instant>,
    outcome: Mutex<Option<JobOutcome>>,
    finished: Condvar,
}

impl JobShared {
    fn new(deadline: Option<Instant>) -> Self {
        JobShared {
            done: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            attempts: AtomicUsize::new(0),
            deadline,
            outcome: Mutex::new(None),
            finished: Condvar::new(),
        }
    }

    fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative stop check shared by chunk claims and retries.
    fn should_stop(&self) -> bool {
        self.cancel.load(Ordering::SeqCst) || self.deadline_exceeded()
    }

    fn finish(&self, outcome: JobOutcome) {
        let mut slot = lock_clean(&self.outcome);
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.finished.notify_all();
    }
}

/// The submitter's view of one job.
#[derive(Clone)]
pub struct JobHandle {
    id: u64,
    shared: Arc<JobShared>,
}

impl JobHandle {
    /// Engine-unique job id, in submission order.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current chunk-granularity progress.
    #[must_use]
    pub fn progress(&self) -> JobProgress {
        JobProgress {
            done: self.shared.done.load(Ordering::SeqCst),
            total: self.shared.total.load(Ordering::SeqCst),
        }
    }

    /// How many execution attempts the job has consumed (1 for a job
    /// that never hit a transient fault; 0 while still queued).
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.shared.attempts.load(Ordering::SeqCst)
    }

    /// Request cooperative cancellation. Queued jobs resolve to
    /// [`JobOutcome::Cancelled`] without running; running chunked jobs
    /// stop at the next chunk boundary.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether the job has reached a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        lock_clean(&self.shared.outcome).is_some()
    }

    /// Block until the job reaches a terminal state and return it.
    #[must_use]
    pub fn wait(&self) -> JobOutcome {
        let mut slot = lock_clean(&self.shared.outcome);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self
                .shared
                .finished
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses, whichever is first. `None` means the job is still
    /// running — the caller keeps the handle and may wait again, cancel,
    /// or walk away.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let wait_deadline = Instant::now() + timeout;
        let mut slot = lock_clean(&self.shared.outcome);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= wait_deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .shared
                .finished
                .wait_timeout(slot, wait_deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

/// Queue state guarded by one mutex: the pending jobs and the drain
/// flag. Storing `draining` *inside* the mutex (not a separate atomic)
/// closes the lost-wakeup window between a worker's emptiness check and
/// its condvar wait.
struct QueueState {
    jobs: VecDeque<(JobSpec, JobPolicy, Arc<JobShared>)>,
    draining: bool,
}

struct EngineQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// Everything a worker thread (or its respawned replacement) needs: the
/// queue, the shared join-handle list, and the respawn counter.
#[derive(Clone)]
struct PoolState {
    queue: Arc<EngineQueue>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    respawns: Arc<AtomicUsize>,
}

/// A bounded pool of worker threads draining a FIFO job queue.
///
/// See the [module docs](self) for the fault-isolation, deadline,
/// determinism, and shutdown contracts.
pub struct JobEngine {
    pool: PoolState,
    worker_count: usize,
    next_id: AtomicUsize,
}

impl JobEngine {
    /// Start an engine with `workers` pool threads. A request for zero
    /// workers is clamped to one — an engine that accepts jobs it can
    /// never run would turn every [`JobHandle::wait`] into a deadlock.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let pool = PoolState {
            queue: Arc::new(EngineQueue {
                state: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    draining: false,
                }),
                ready: Condvar::new(),
            }),
            handles: Arc::new(Mutex::new(Vec::with_capacity(workers))),
            respawns: Arc::new(AtomicUsize::new(0)),
        };
        for w in 0..workers {
            spawn_worker(w, pool.clone());
        }
        JobEngine {
            pool,
            worker_count: workers,
            next_id: AtomicUsize::new(0),
        }
    }

    /// Number of pool threads the engine maintains (respawned
    /// replacements keep this constant).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// How many worker threads died and were respawned over the
    /// engine's lifetime. Zero in healthy operation — the per-job
    /// `catch_unwind` isolation means even panicking jobs do not kill
    /// workers.
    #[must_use]
    pub fn respawns(&self) -> usize {
        self.pool.respawns.load(Ordering::SeqCst)
    }

    /// Enqueue a job under the default [`JobPolicy`] (no deadline, no
    /// retries) and return its handle.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.submit_with(spec, JobPolicy::default())
    }

    /// Enqueue a job (non-blocking) under an explicit policy and return
    /// its handle.
    ///
    /// After [`JobEngine::shutdown`] has begun the engine accepts
    /// nothing new: the job resolves immediately to
    /// [`JobOutcome::Failed`] without entering the queue.
    pub fn submit_with(&self, spec: JobSpec, policy: JobPolicy) -> JobHandle {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) as u64;
        let deadline = policy.deadline.map(|d| Instant::now() + d);
        let shared = Arc::new(JobShared::new(deadline));
        let handle = JobHandle {
            id,
            shared: Arc::clone(&shared),
        };
        {
            let mut state = lock_clean(&self.pool.queue.state);
            if state.draining {
                drop(state);
                shared.finish(JobOutcome::Failed {
                    reason: String::from("engine is draining; submission rejected"),
                });
                return handle;
            }
            state.jobs.push_back((spec, policy, shared));
        }
        self.pool.queue.ready.notify_one();
        handle
    }

    /// Graceful drain: stop accepting submissions, run every queued job
    /// to completion, and join the pool.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        {
            let mut state = lock_clean(&self.pool.queue.state);
            state.draining = true;
        }
        self.pool.queue.ready.notify_all();
        // Workers can respawn replacements while we join (a dying worker
        // pushes the replacement's handle before its own thread exits),
        // so keep draining the handle list until it stays empty.
        loop {
            let handle = lock_clean(&self.pool.handles).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Spawn pool worker `index` and record its join handle. Also the
/// respawn path: a dying worker's guard calls this again.
fn spawn_worker(index: usize, pool: PoolState) {
    let thread_pool = pool.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sinw-job-{index}"))
        .spawn(move || {
            let _guard = RespawnGuard {
                index,
                pool: thread_pool.clone(),
            };
            worker_loop(&thread_pool.queue);
        })
        .expect("spawn job worker");
    lock_clean(&pool.handles).push(handle);
}

/// Runs on worker-thread exit: a normal drain return does nothing, but
/// an unwinding worker (a panic that escaped the per-job isolation —
/// deliberately reachable through the `jobs.worker.die` fail point)
/// spawns its own replacement so the pool never shrinks.
struct RespawnGuard {
    index: usize,
    pool: PoolState,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.pool.respawns.fetch_add(1, Ordering::SeqCst);
            spawn_worker(self.index, self.pool.clone());
        }
    }
}

/// Resolves the in-flight job to `Failed` if the worker dies while
/// holding it, so no waiter blocks forever on a job that will never
/// finish. Disarmed on the normal path before the real outcome lands.
struct JobAbortGuard {
    shared: Arc<JobShared>,
    armed: bool,
}

impl Drop for JobAbortGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.shared.finish(JobOutcome::Failed {
                reason: String::from("worker thread died while running the job"),
            });
        }
    }
}

fn worker_loop(queue: &EngineQueue) {
    loop {
        let job = {
            let mut state = lock_clean(&queue.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.draining {
                    break None;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some((spec, policy, shared)) => {
                let mut abort_guard = JobAbortGuard {
                    shared: Arc::clone(&shared),
                    armed: true,
                };
                // Deliberately OUTSIDE the catch_unwind boundary: this
                // fail point kills the worker itself, exercising the
                // respawn path and the abort guard above.
                let _ = failpoint::hit("jobs.worker.die");
                let outcome = if shared.cancel.load(Ordering::SeqCst) {
                    JobOutcome::Cancelled
                } else if shared.deadline_exceeded() {
                    JobOutcome::TimedOut
                } else {
                    execute_with_retries(&spec, &policy, &shared)
                };
                abort_guard.armed = false;
                shared.finish(outcome);
            }
            None => return,
        }
    }
}

/// Why one execution attempt failed, split by whether a retry can help.
enum RunFailure {
    /// An injected transient fault: retryable under the job's policy.
    Transient(String),
    /// A validation failure or an isolated panic: never retried.
    Permanent(String),
}

/// The retry loop around single execution attempts: panics are isolated
/// here, transient failures sleep an exponential backoff and re-run (the
/// deadline still applies), permanent failures harden immediately.
fn execute_with_retries(spec: &JobSpec, policy: &JobPolicy, shared: &JobShared) -> JobOutcome {
    let mut attempt: u32 = 0;
    loop {
        shared.attempts.fetch_add(1, Ordering::SeqCst);
        shared.done.store(0, Ordering::SeqCst);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(spec.clone(), shared)
        }));
        let failure = match result {
            Ok(Ok(outcome)) => return outcome,
            Ok(Err(failure)) => failure,
            Err(payload) => {
                RunFailure::Permanent(format!("job panicked: {}", panic_reason(payload.as_ref())))
            }
        };
        match failure {
            RunFailure::Transient(reason) if attempt < policy.max_retries => {
                attempt += 1;
                let backoff = policy
                    .retry_backoff
                    .checked_mul(1u32 << (attempt - 1).min(16))
                    .unwrap_or(MAX_BACKOFF)
                    .min(MAX_BACKOFF);
                std::thread::sleep(backoff);
                if shared.cancel.load(Ordering::SeqCst) {
                    return JobOutcome::Cancelled;
                }
                if shared.deadline_exceeded() {
                    return JobOutcome::TimedOut;
                }
                let _ = reason;
            }
            RunFailure::Transient(reason) => {
                return JobOutcome::Failed {
                    reason: format!(
                        "transient fault persisted through {} attempt(s): {reason}",
                        attempt + 1
                    ),
                }
            }
            RunFailure::Permanent(reason) => return JobOutcome::Failed { reason },
        }
    }
}

/// One execution attempt. `Ok` carries any terminal outcome (success,
/// cancellation, deadline expiry); `Err` carries a failure for the retry
/// loop to classify.
fn run_job(spec: JobSpec, shared: &JobShared) -> Result<JobOutcome, RunFailure> {
    match spec {
        JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected,
            threads,
        } => run_fault_sim(&compiled, &patterns, drop_detected, threads, shared),
        JobSpec::Signatures {
            compiled,
            patterns,
            threads,
        } => run_signatures(&compiled, &patterns, threads, shared),
        JobSpec::Campaign { compiled, config } => {
            shared.total.store(1, Ordering::SeqCst);
            failpoint::hit("jobs.campaign.run")
                .map_err(|e| RunFailure::Transient(e.to_string()))?;
            let report = AtpgEngine::new(compiled.circuit(), config)
                .run(&compiled.collapsed().representatives);
            shared.done.store(1, Ordering::SeqCst);
            Ok(JobOutcome::Campaign(report))
        }
        JobSpec::Diagnosis {
            dictionary,
            observations,
        } => {
            shared.total.store(1, Ordering::SeqCst);
            failpoint::hit("jobs.diagnosis.run")
                .map_err(|e| RunFailure::Transient(e.to_string()))?;
            for &(pattern, output) in &observations {
                if pattern >= dictionary.pattern_count() || output >= dictionary.output_count() {
                    return Err(RunFailure::Permanent(format!(
                        "observation ({pattern}, {output}) outside the dictionary's \
                         {} x {} probe grid",
                        dictionary.pattern_count(),
                        dictionary.output_count()
                    )));
                }
            }
            let report = dictionary.diagnose(&observations);
            shared.done.store(1, Ordering::SeqCst);
            Ok(JobOutcome::Diagnosis(report))
        }
    }
}

/// Validate a pattern set against the compiled circuit before fan-out,
/// so malformed requests fail typed instead of panicking inside a pool
/// thread.
fn check_patterns(compiled: &CompiledCircuit, patterns: &[Vec<bool>]) -> Result<(), RunFailure> {
    let n_pi = compiled.circuit().primary_inputs().len();
    for (k, p) in patterns.iter().enumerate() {
        if p.len() != n_pi {
            return Err(RunFailure::Permanent(format!(
                "pattern {k} has {} bits, circuit '{}' has {n_pi} primary inputs",
                p.len(),
                compiled.name()
            )));
        }
    }
    Ok(())
}

/// How a chunked fan-out ended.
enum ChunkExit<T> {
    /// Every chunk ran; results in chunk-index order.
    Done(Vec<T>),
    /// The cancel flag stopped the fan-out at a chunk boundary.
    Cancelled,
    /// The deadline stopped the fan-out at a chunk boundary.
    TimedOut,
    /// A chunk hit an injected fault; the fan-out aborted early.
    Injected(String),
}

/// Fan a fault-list computation out over `threads` scoped threads
/// claiming [`JOB_CHUNK`]-sized chunks from a [`WorkQueue`], collecting
/// one result per chunk **in chunk-index order**. Cancellation, the
/// deadline, and injected faults are all checked at chunk granularity.
fn chunked<T: Send>(
    n_faults: usize,
    threads: usize,
    shared: &JobShared,
    run_chunk: impl Fn(std::ops::Range<usize>) -> Result<T, InjectedError> + Sync,
) -> ChunkExit<T> {
    let threads = threads.max(1);
    let queue = WorkQueue::new(n_faults, threads, JOB_CHUNK);
    shared.total.store(queue.chunk_count(), Ordering::SeqCst);
    let slots: Vec<Mutex<Option<T>>> = (0..queue.chunk_count()).map(|_| Mutex::new(None)).collect();
    let abort = AtomicBool::new(false);
    let injected: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queue = &queue;
            let slots = &slots;
            let run_chunk = &run_chunk;
            let abort = &abort;
            let injected = &injected;
            scope.spawn(move || {
                while let Some(chunk) = queue.pop(w) {
                    if abort.load(Ordering::SeqCst) || shared.should_stop() {
                        return;
                    }
                    match run_chunk(queue.item_range(chunk)) {
                        Ok(result) => {
                            *lock_clean(&slots[chunk]) = Some(result);
                            shared.done.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            lock_clean(injected).get_or_insert_with(|| e.to_string());
                            abort.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = lock_clean(&injected).take() {
        return ChunkExit::Injected(e);
    }
    if shared.cancel.load(Ordering::SeqCst) {
        return ChunkExit::Cancelled;
    }
    if shared.deadline_exceeded() {
        return ChunkExit::TimedOut;
    }
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(v) => out.push(v),
            // A worker observed a stop signal that has since cleared is
            // impossible (cancel latches, deadlines only move forward),
            // but be safe: treat a hole as a stop.
            None => {
                return if shared.cancel.load(Ordering::SeqCst) {
                    ChunkExit::Cancelled
                } else {
                    ChunkExit::TimedOut
                }
            }
        }
    }
    ChunkExit::Done(out)
}

fn run_fault_sim(
    compiled: &CompiledCircuit,
    patterns: &[Vec<bool>],
    drop_detected: bool,
    threads: usize,
    shared: &JobShared,
) -> Result<JobOutcome, RunFailure> {
    check_patterns(compiled, patterns)?;
    let faults = &compiled.collapsed().representatives;
    let chunks = match chunked(faults.len(), threads, shared, |range| {
        failpoint::hit("jobs.faultsim.chunk")?;
        let offset = range.start;
        let report = simulate_faults_with_graph(
            compiled.circuit(),
            compiled.graph(),
            &faults[range],
            patterns,
            drop_detected,
        );
        Ok((offset, report))
    }) {
        ChunkExit::Done(chunks) => chunks,
        ChunkExit::Cancelled => return Ok(JobOutcome::Cancelled),
        ChunkExit::TimedOut => return Ok(JobOutcome::TimedOut),
        ChunkExit::Injected(e) => return Err(RunFailure::Transient(e)),
    };
    // Chunk-order merge: indices shift by the chunk's offset (ascending
    // across chunks, so the merged index lists stay sorted) and
    // first-detection credit sums per pattern.
    let mut merged = FaultSimReport {
        detected: Vec::new(),
        undetected: Vec::new(),
        first_detections: vec![0usize; patterns.len()],
    };
    for (offset, report) in chunks {
        merged
            .detected
            .extend(report.detected.iter().map(|f| f + offset));
        merged
            .undetected
            .extend(report.undetected.iter().map(|f| f + offset));
        for (p, n) in report.first_detections.iter().enumerate() {
            merged.first_detections[p] += n;
        }
    }
    Ok(JobOutcome::FaultSim(merged))
}

fn run_signatures(
    compiled: &CompiledCircuit,
    patterns: &[Vec<bool>],
    threads: usize,
    shared: &JobShared,
) -> Result<JobOutcome, RunFailure> {
    check_patterns(compiled, patterns)?;
    let faults = &compiled.collapsed().representatives;
    let chunks = match chunked(faults.len(), threads, shared, |range| {
        failpoint::hit("jobs.signatures.chunk")?;
        Ok(capture_signatures_with_graph(
            compiled.circuit(),
            compiled.graph(),
            &faults[range],
            patterns,
        ))
    }) {
        ChunkExit::Done(chunks) => chunks,
        ChunkExit::Cancelled => return Ok(JobOutcome::Cancelled),
        ChunkExit::TimedOut => return Ok(JobOutcome::TimedOut),
        ChunkExit::Injected(e) => return Err(RunFailure::Transient(e)),
    };
    // Row-concatenate in chunk order; every chunk shares the pattern /
    // output geometry, so the packed words line up exactly.
    let n_outputs = compiled.circuit().primary_outputs().len();
    let mut bits = Vec::new();
    for chunk in &chunks {
        bits.extend_from_slice(chunk.bits());
    }
    match SignatureMatrix::from_raw_parts(faults.len(), patterns.len(), n_outputs, bits) {
        Ok(matrix) => Ok(JobOutcome::Signatures(matrix)),
        Err(e) => Err(RunFailure::Permanent(format!(
            "signature merge rejected: {e}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::compile_circuit;
    use sinw_atpg::faultsim::capture_signatures;
    use sinw_atpg::simulate_faults;
    use sinw_switch::gate::Circuit;

    fn patterns_for(circuit: &Circuit, count: usize) -> Vec<Vec<bool>> {
        let n_pi = circuit.primary_inputs().len();
        // Deterministic LCG-ish fill; no external randomness.
        let mut state = 0x5EED_0B1Au64;
        (0..count)
            .map(|_| {
                (0..n_pi)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fault_sim_job_matches_direct_serial_call() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 96));
        let reference = simulate_faults(
            compiled.circuit(),
            &compiled.collapsed().representatives,
            &patterns,
            true,
        );
        let engine = JobEngine::new(2);
        let handle = engine.submit(JobSpec::FaultSim {
            compiled: Arc::clone(&compiled),
            patterns: Arc::clone(&patterns),
            drop_detected: true,
            threads: 3,
        });
        match handle.wait() {
            JobOutcome::FaultSim(report) => assert_eq!(report, reference),
            other => panic!("unexpected outcome {other:?}"),
        }
        let progress = handle.progress();
        assert_eq!(progress.done, progress.total);
        assert!(progress.total >= 1);
        assert_eq!(handle.attempts(), 1);
        engine.shutdown();
    }

    #[test]
    fn signature_job_matches_direct_capture() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 40));
        let reference = capture_signatures(
            compiled.circuit(),
            &compiled.collapsed().representatives,
            &patterns,
        );
        let engine = JobEngine::new(2);
        let handle = engine.submit(JobSpec::Signatures {
            compiled,
            patterns,
            threads: 2,
        });
        match handle.wait() {
            JobOutcome::Signatures(matrix) => assert_eq!(matrix, reference),
            other => panic!("unexpected outcome {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn malformed_patterns_fail_typed() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let engine = JobEngine::new(1);
        let handle = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns: Arc::new(vec![vec![true; 3]]),
            drop_detected: false,
            threads: 1,
        });
        assert!(matches!(handle.wait(), JobOutcome::Failed { .. }));
        engine.shutdown();
    }

    #[test]
    fn zero_worker_request_is_clamped_and_still_serves() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 8));
        let engine = JobEngine::new(0);
        assert_eq!(engine.workers(), 1, "0 workers clamps to 1");
        let handle = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected: false,
            threads: 1,
        });
        assert!(matches!(handle.wait(), JobOutcome::FaultSim(_)));
        engine.shutdown();
    }

    #[test]
    fn wait_timeout_returns_none_while_queued_then_the_outcome() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 8));
        let engine = JobEngine::new(1);
        let handle = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected: false,
            threads: 1,
        });
        // Either the tiny wait expires (None) or the job already
        // finished (Some) — both are valid; what is forbidden is
        // blocking forever.
        let quick = handle.wait_timeout(Duration::from_micros(1));
        assert!(quick.is_none() || matches!(quick, Some(JobOutcome::FaultSim(_))));
        match handle.wait_timeout(Duration::from_secs(30)) {
            Some(JobOutcome::FaultSim(_)) => {}
            other => panic!("job must finish well within 30s, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_resolves_to_timed_out() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 8));
        let engine = JobEngine::new(1);
        // A deadline of zero is already expired at pickup.
        let handle = engine.submit_with(
            JobSpec::FaultSim {
                compiled,
                patterns,
                drop_detected: false,
                threads: 1,
            },
            JobPolicy::with_deadline(Duration::ZERO),
        );
        assert!(matches!(handle.wait(), JobOutcome::TimedOut));
        engine.shutdown();
    }

    #[test]
    fn cancelled_before_pickup_never_runs() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let patterns = Arc::new(patterns_for(compiled.circuit(), 8));
        let engine = JobEngine::new(1);
        // Stuff the single worker with work, cancel a queued job before
        // it can be picked up. The first job may or may not finish first;
        // the cancelled one must never produce a result.
        let _busy = engine.submit(JobSpec::FaultSim {
            compiled: Arc::clone(&compiled),
            patterns: Arc::clone(&patterns),
            drop_detected: false,
            threads: 1,
        });
        let victim = engine.submit(JobSpec::FaultSim {
            compiled,
            patterns,
            drop_detected: false,
            threads: 1,
        });
        victim.cancel();
        match victim.wait() {
            JobOutcome::Cancelled | JobOutcome::FaultSim(_) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let compiled = Arc::new(compile_circuit("c17", Circuit::c17()));
        let engine = JobEngine::new(1);
        // Reach into drain without consuming: flip the draining flag and
        // assert the documented behaviour.
        {
            let mut state = lock_clean(&engine.pool.queue.state);
            state.draining = true;
        }
        let handle = engine.submit(JobSpec::Diagnosis {
            dictionary: Arc::new(sinw_atpg::FaultDictionary::from_signatures(
                &capture_signatures(
                    compiled.circuit(),
                    &compiled.collapsed().representatives,
                    &patterns_for(compiled.circuit(), 4),
                ),
            )),
            observations: vec![],
        });
        assert!(matches!(handle.wait(), JobOutcome::Failed { .. }));
        // Clear the flag so Drop's drain can join the (still waiting)
        // workers normally.
        engine.pool.queue.ready.notify_all();
    }
}

//! # sinw-server — ATPG as a service
//!
//! Service layer of the DATE'15 reproduction *"Fault Modeling in
//! Controllable Polarity Silicon Nanowire Circuits"*: the first step from
//! batch drivers to a persistent system. Every batch driver in the
//! workspace re-runs the same front half — parse `.bench`, map onto the
//! CP cell library, enumerate and collapse the stuck-at universe, build
//! the levelized [`SimGraph`] — before a single pattern is simulated.
//! Served at scale, that front half *is* the hot path, so this crate
//! caches it:
//!
//! * [`registry`] — the **compiled-circuit registry**
//!   ([`CircuitRegistry`]): parse → map → collapse → graph-build runs
//!   once per distinct source, keyed by a content hash, and every later
//!   request shares the same immutable [`CompiledCircuit`] artifact
//!   through an [`Arc`](std::sync::Arc). Hit / miss / compile counters
//!   make the "exactly one compile" contract observable (and testable).
//! * [`snapshot`] — the versioned binary **`.sinw` snapshot format**
//!   (magic + version + checksum): circuits, fault universes, collapsed
//!   classes, and [`FaultDictionary`] instances survive process restarts
//!   without re-parsing `.bench` text. Decoding is fully defensive —
//!   truncated, corrupted, or fuzzed bytes produce a typed
//!   [`SnapshotError`], never a panic or an unbounded allocation.
//! * [`jobs`] — the bounded **job engine** ([`JobEngine`]): a fixed pool
//!   of workers multiplexing concurrent fault-sim / signature-capture /
//!   campaign / diagnosis requests over shared compiled artifacts, with
//!   per-job progress, cooperative cancellation, and graceful drain on
//!   shutdown. Heavy jobs fan out internally over the same work-stealing
//!   chunk queue ([`sinw_atpg::steal::WorkQueue`]) as the PPSFP engines,
//!   with the same determinism argument: chunk boundaries are a pure
//!   function of the input, so results are bit-identical to direct
//!   serial engine calls no matter how chunks migrate between workers.
//!
//! A service that runs long enough meets every failure its parts can
//! produce, so the crate also carries a **robustness layer**:
//!
//! * [`failpoint`] — a **deterministic fault-injection harness**: named
//!   fail points threaded through compile, snapshot-I/O, and job-chunk
//!   paths inject panics, I/O errors, and delays under seeded,
//!   per-point triggers (configured in code or via the
//!   `SINW_FAILPOINTS` environment variable), with a single relaxed
//!   atomic load as the entire disabled-path cost.
//! * [`jobs`] hardening — job bodies run under `catch_unwind` (a panic
//!   becomes a typed [`JobOutcome::Failed`], never a dead worker),
//!   workers that do die are respawned, and a per-job [`JobPolicy`]
//!   adds deadlines ([`JobOutcome::TimedOut`]) and bounded
//!   retry-with-backoff for transient faults.
//! * [`store`] — the **crash-safe [`SnapshotStore`]**: atomic
//!   temp-file + fsync + rename writes, a boot-time recovery scan that
//!   quarantines corrupt files instead of panicking, and registry
//!   warm-start with zero compiles.
//! * [`registry`] capacity — a byte-accounted LRU bound
//!   ([`CircuitRegistry::with_capacity_bytes`]) with typed
//!   [`RegistryError`]s; eviction never invalidates an
//!   [`Arc`](std::sync::Arc) already handed to a job.
//!
//! And a service nobody can reach is a library, so the crate puts the
//! engine **on a wire**:
//!
//! * [`wire`] — the length-prefixed binary frame protocol (magic,
//!   version, type, length, FNV-1a checksum — the `.sinw` header idiom
//!   over TCP) with fully total decoding: any byte string produces a
//!   typed [`WireError`], never a panic, and hostile lengths die before
//!   allocation.
//! * [`session`] — per-client sessions with byte and in-flight-job
//!   quotas ([`SessionLimits`]), typed backpressure
//!   ([`SessionError`]), and idle reaping that never strands a running
//!   job.
//! * [`net`] — the [`NetServer`] (std-only TCP, thread per connection)
//!   composing registry + store + engine + sessions, streaming job
//!   progress frame-by-frame over `AwaitJob`, and draining gracefully
//!   on shutdown; plus the matching blocking [`NetClient`].
//!
//! ```
//! use sinw_server::registry::CircuitRegistry;
//! use sinw_switch::iscas::CSA16_BENCH;
//!
//! let registry = CircuitRegistry::new();
//! let cold = registry.register_bench("csa16", CSA16_BENCH).unwrap();
//! let hit = registry.register_bench("csa16", CSA16_BENCH).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&cold, &hit), "one artifact, shared");
//! assert_eq!(registry.stats().compiles, 1, "the hit compiled nothing");
//! ```
//!
//! [`SimGraph`]: sinw_atpg::SimGraph
//! [`FaultDictionary`]: sinw_atpg::FaultDictionary
//! [`CircuitRegistry`]: registry::CircuitRegistry
//! [`CompiledCircuit`]: registry::CompiledCircuit
//! [`SnapshotError`]: snapshot::SnapshotError
//! [`JobEngine`]: jobs::JobEngine
//! [`JobOutcome::Failed`]: jobs::JobOutcome::Failed
//! [`JobOutcome::TimedOut`]: jobs::JobOutcome::TimedOut
//! [`JobPolicy`]: jobs::JobPolicy
//! [`SnapshotStore`]: store::SnapshotStore
//! [`RegistryError`]: registry::RegistryError
//! [`CircuitRegistry::with_capacity_bytes`]: registry::CircuitRegistry::with_capacity_bytes
//! [`WireError`]: wire::WireError
//! [`SessionLimits`]: session::SessionLimits
//! [`SessionError`]: session::SessionError
//! [`NetServer`]: net::NetServer
//! [`NetClient`]: net::NetClient

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failpoint;
pub mod jobs;
pub mod net;
pub mod registry;
pub mod session;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use jobs::{JobEngine, JobHandle, JobOutcome, JobPolicy, JobProgress, JobSpec};
pub use net::{ClientError, NetClient, NetConfig, NetServer};
pub use registry::{
    compile_circuit, CircuitRegistry, CompiledCircuit, RegistryError, RegistryStats,
};
pub use session::{SessionError, SessionLimits, SessionManager};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{RecoveryReport, SnapshotStore, WarmStartReport};
pub use wire::{
    ErrorCode, Request, Response, WireError, WireJob, WireOutcome, WireStats, WIRE_MAGIC,
    WIRE_VERSION,
};

//! # sinw-server — ATPG as a service
//!
//! Service layer of the DATE'15 reproduction *"Fault Modeling in
//! Controllable Polarity Silicon Nanowire Circuits"*: the first step from
//! batch drivers to a persistent system. Every batch driver in the
//! workspace re-runs the same front half — parse `.bench`, map onto the
//! CP cell library, enumerate and collapse the stuck-at universe, build
//! the levelized [`SimGraph`] — before a single pattern is simulated.
//! Served at scale, that front half *is* the hot path, so this crate
//! caches it:
//!
//! * [`registry`] — the **compiled-circuit registry**
//!   ([`CircuitRegistry`]): parse → map → collapse → graph-build runs
//!   once per distinct source, keyed by a content hash, and every later
//!   request shares the same immutable [`CompiledCircuit`] artifact
//!   through an [`Arc`](std::sync::Arc). Hit / miss / compile counters
//!   make the "exactly one compile" contract observable (and testable).
//! * [`snapshot`] — the versioned binary **`.sinw` snapshot format**
//!   (magic + version + checksum): circuits, fault universes, collapsed
//!   classes, and [`FaultDictionary`] instances survive process restarts
//!   without re-parsing `.bench` text. Decoding is fully defensive —
//!   truncated, corrupted, or fuzzed bytes produce a typed
//!   [`SnapshotError`], never a panic or an unbounded allocation.
//! * [`jobs`] — the bounded **job engine** ([`JobEngine`]): a fixed pool
//!   of workers multiplexing concurrent fault-sim / signature-capture /
//!   campaign / diagnosis requests over shared compiled artifacts, with
//!   per-job progress, cooperative cancellation, and graceful drain on
//!   shutdown. Heavy jobs fan out internally over the same work-stealing
//!   chunk queue ([`sinw_atpg::steal::WorkQueue`]) as the PPSFP engines,
//!   with the same determinism argument: chunk boundaries are a pure
//!   function of the input, so results are bit-identical to direct
//!   serial engine calls no matter how chunks migrate between workers.
//!
//! ```
//! use sinw_server::registry::CircuitRegistry;
//! use sinw_switch::iscas::CSA16_BENCH;
//!
//! let registry = CircuitRegistry::new();
//! let cold = registry.register_bench("csa16", CSA16_BENCH).unwrap();
//! let hit = registry.register_bench("csa16", CSA16_BENCH).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&cold, &hit), "one artifact, shared");
//! assert_eq!(registry.stats().compiles, 1, "the hit compiled nothing");
//! ```
//!
//! [`SimGraph`]: sinw_atpg::SimGraph
//! [`FaultDictionary`]: sinw_atpg::FaultDictionary
//! [`CircuitRegistry`]: registry::CircuitRegistry
//! [`CompiledCircuit`]: registry::CompiledCircuit
//! [`SnapshotError`]: snapshot::SnapshotError
//! [`JobEngine`]: jobs::JobEngine

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod jobs;
pub mod registry;
pub mod snapshot;

pub use jobs::{JobEngine, JobHandle, JobOutcome, JobProgress, JobSpec};
pub use registry::{compile_circuit, CircuitRegistry, CompiledCircuit, RegistryStats};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

//! Golden end-to-end tests of the fault dictionary + diagnosis engine:
//! pinned dictionary stats on the embedded fixtures, the csa16
//! redundancy/empty-class structure, engine-identity across builds, and
//! an injected-defect → observe → diagnose → verify walk.
//!
//! All pattern sets come from the ATPG campaign at its default
//! (deterministic) configuration, so every number here is reproducible
//! bit for bit.

use sinw::atpg::diagnose::{full_pass_observations, FaultDictionary};
use sinw::atpg::fault_list::enumerate_stuck_at;
use sinw::atpg::faultsim::simulate_faults;
use sinw::atpg::tpg::{AtpgConfig, AtpgEngine, FaultStatus};
use sinw::switch::gate::Circuit;
use sinw::switch::iscas::{parse_bench, C17_BENCH, CSA16_BENCH};

/// Campaign-compacted pattern set at the default deterministic config,
/// plus the collapsed universe and per-representative statuses.
fn campaign_patterns(
    circuit: &Circuit,
) -> (
    Vec<Vec<bool>>,
    Vec<sinw::atpg::StuckAtFault>,
    Vec<FaultStatus>,
) {
    let (collapsed, report) = AtpgEngine::run_collapsed(circuit, AtpgConfig::default());
    (report.patterns, collapsed.representatives, report.statuses)
}

/// c17 dictionary golden: the full 34-fault universe over the campaign's
/// compacted set collapses to 20 indistinguishability classes, 160 bytes
/// of stored signatures (vs 272 uncompressed), with no all-pass class —
/// c17 is fully testable.
#[test]
fn c17_dictionary_stats_are_pinned() {
    let c17 = parse_bench(C17_BENCH).expect("embedded c17 parses");
    let faults = enumerate_stuck_at(&c17);
    let (patterns, _, _) = campaign_patterns(&c17);
    let dict = FaultDictionary::build(&c17, &faults, &patterns);
    let stats = dict.stats();
    assert_eq!(stats.faults, 34, "c17 stuck-at universe");
    assert_eq!(stats.classes, 20, "c17 class count");
    assert_eq!(stats.compressed_bytes, 160, "c17 dictionary bytes");
    assert_eq!(stats.uncompressed_bytes, 272, "c17 per-fault matrix bytes");
    assert!(stats.compressed_bytes < stats.uncompressed_bytes);
    assert_eq!(stats.empty_classes, 0, "c17 has no undetectable faults");
    assert_eq!(stats.max_class_size, 4);
    // The builds are one engine in three guises.
    let serial = FaultDictionary::build_serial(&c17, &faults, &patterns);
    let threaded = FaultDictionary::build_threaded(&c17, &faults, &patterns, 3);
    assert_eq!(dict.class_of(), serial.class_of());
    assert_eq!(dict.class_of(), threaded.class_of());
}

/// csa16 diagnostic-resolution golden: 1192 faults → 550 classes, and the
/// three proven-redundant carry-select mux faults land — together with
/// every other fault the compacted set leaves silent — in exactly one
/// all-pass (empty-signature) class, which matches the undetected set of
/// an independent `simulate_faults` pass exactly.
#[test]
fn csa16_redundant_faults_form_the_empty_class() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    let faults = enumerate_stuck_at(&csa);
    let (patterns, representatives, statuses) = campaign_patterns(&csa);
    let dict = FaultDictionary::build_threaded(&csa, &faults, &patterns, 0);
    let stats = dict.stats();
    assert_eq!(stats.faults, 1192, "csa16 stuck-at universe");
    assert_eq!(stats.classes, 550, "csa16 class count");
    assert_eq!(stats.compressed_bytes, 44_000, "csa16 dictionary bytes");
    assert_eq!(stats.uncompressed_bytes, 95_360);
    assert_eq!(stats.max_class_size, 10);
    assert_eq!(stats.empty_classes, 1, "one all-pass class");

    // The all-pass class is exactly the set of faults the pattern set
    // never exposes, cross-checked against the public detect engine.
    let empty_class = (0..dict.class_count())
        .find(|c| dict.class_is_empty(*c))
        .expect("one empty class exists");
    let check = simulate_faults(&csa, &faults, &patterns, false);
    assert_eq!(dict.class_members(empty_class), &check.undetected[..]);

    // The three statically-proven mux redundancies are members of it.
    let untestable: Vec<_> = representatives
        .iter()
        .zip(&statuses)
        .filter(|(_, s)| **s == FaultStatus::Untestable)
        .map(|(f, _)| *f)
        .collect();
    assert_eq!(untestable.len(), 3, "csa16 carries 3 proven redundancies");
    for f in &untestable {
        let fi = faults
            .iter()
            .position(|g| g == f)
            .expect("representative is in the universe");
        assert_eq!(
            dict.class_of()[fi],
            empty_class,
            "{} must sit in the all-pass class",
            f.describe(&csa)
        );
    }

    // Every detected fault sits in a non-empty class, and the class sizes
    // partition the universe.
    for &fi in &check.detected {
        assert!(!dict.class_is_empty(dict.class_of()[fi]));
    }
    let total: usize = (0..dict.class_count())
        .map(|c| dict.class_members(c).len())
        .sum();
    assert_eq!(total, faults.len());
}

/// The full walk a test floor would run: inject a defect, log the failing
/// (pattern, output) probes with the independent full-pass oracle,
/// diagnose, and verify the verdict — the true fault's class ranks first
/// with an exact match, and every member of that class is empirically
/// indistinguishable (identical observations).
#[test]
fn injected_defect_walk_on_csa16() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    let faults = enumerate_stuck_at(&csa);
    let (patterns, _, _) = campaign_patterns(&csa);
    let dict = FaultDictionary::build_threaded(&csa, &faults, &patterns, 0);
    for fi in (0..faults.len()).step_by(97) {
        let obs = full_pass_observations(&csa, faults[fi], &patterns);
        let report = dict.diagnose(&obs);
        let best = report.best().expect("non-empty dictionary");
        assert!(best.exact, "{}", faults[fi].describe(&csa));
        assert_eq!(
            best.class,
            dict.class_of()[fi],
            "diagnosis missed {}",
            faults[fi].describe(&csa)
        );
        // Verify: the candidate class is a real ambiguity set — every
        // member produces the observed response verbatim.
        for &m in dict.class_members(best.class) {
            assert_eq!(
                full_pass_observations(&csa, faults[m], &patterns),
                obs,
                "{} claimed indistinguishable from {}",
                faults[m].describe(&csa),
                faults[fi].describe(&csa)
            );
        }
    }
}

/// The experiments driver rows are internally consistent and every
/// sampled diagnosis probe ranked the true class first.
#[test]
fn diagnosis_driver_rows_are_verified() {
    let result = sinw::core::experiments::diagnosis(true);
    let suite = sinw::core::experiments::benchmark_suite(true);
    assert_eq!(result.rows.len(), suite.len());
    for row in &result.rows {
        assert_eq!(
            row.probes_ranked_first, row.probes,
            "{}: a diagnosis probe missed its class",
            row.name
        );
        assert!(row.probes > 0, "{}: no probes sampled", row.name);
        assert!(
            row.stats.compressed_bytes < row.stats.uncompressed_bytes,
            "{}: class merging must compress",
            row.name
        );
        assert!(
            row.stats.classes <= row.stats.faults && row.stats.classes > 0,
            "{}: classes must partition a non-empty universe",
            row.name
        );
    }
    let csa16 = result.row("csa16").expect("driver includes csa16");
    assert_eq!(csa16.stats.empty_classes, 1);
}

//! Workspace smoke test: one construction from each crate's public API.
//!
//! This test exists to guard the *build system*, not the physics: if a
//! crate manifest loses a dependency edge, an umbrella re-export breaks, or
//! a `pub use` in a crate root is dropped, this file stops compiling (or
//! fails loudly) before anything subtler does. Keep each section to the
//! cheapest call that still proves the crate's public API is reachable.

use std::sync::Arc;

/// `sinw-device`: build an I–V lookup table and evaluate one bias point.
#[test]
fn device_api_reachable() {
    use sinw_device::model::Bias;
    use sinw_device::{DeviceDefect, GateTerminal, TigFet, TigTable};

    let fet = TigFet::ideal();
    let table = TigTable::build_coarse(&fet);
    let on = table.current(Bias::uniform_gates(1.2, 1.2));
    assert!(on.is_finite() && on > 0.0, "healthy ON current: {on}");

    // The defect type from the crate root is the same one `model` consumes.
    let sick = TigFet::ideal().with_defect(DeviceDefect::gos(GateTerminal::Pgs));
    assert!(sick.drain_current(Bias::uniform_gates(1.2, 1.2)) < on);
}

/// `sinw-analog`: assemble a circuit around the device table and solve DC.
#[test]
fn analog_api_reachable() {
    use sinw_analog::cells::AnalogCell;
    use sinw_analog::circuit::Waveform;
    use sinw_analog::solver::{dc, SolverOpts};
    use sinw_device::{TigFet, TigTable};
    use sinw_switch::cells::CellKind;

    let table = Arc::new(TigTable::build_coarse(&TigFet::ideal()));
    let cell = AnalogCell::build(CellKind::Inv, table, &[Waveform::Dc(0.0)]);
    let op = dc(&cell.circuit, &SolverOpts::default()).expect("INV operating point");
    assert!(op.v.iter().all(|v| v.is_finite()));
}

/// `sinw-switch`: build a cell and evaluate one gate vector.
#[test]
fn switch_api_reachable() {
    use sinw_switch::value::Logic;
    use sinw_switch::{Cell, CellKind, SwitchSim};

    let cell = Cell::build(CellKind::Xor2);
    assert_eq!(cell.eval(&[true, false]), Logic::One);

    let mut sim = SwitchSim::new(&cell.netlist);
    let r = sim.apply(&cell.input_assignment(&[true, true]));
    assert!(!r.rail_short, "healthy XOR2 must not short the rails");
}

/// `sinw-atpg`: enumerate a fault list, generate one test, and run the
/// campaign engine end to end.
#[test]
fn atpg_api_reachable() {
    use sinw_atpg::{
        enumerate_stuck_at, fill_cube, generate_test, AtpgConfig, AtpgEngine, PodemConfig,
        PodemResult,
    };
    use sinw_switch::gate::Circuit;

    let c17 = Circuit::c17();
    let faults = enumerate_stuck_at(&c17);
    assert!(!faults.is_empty(), "c17 has a non-empty fault universe");
    match generate_test(&c17, faults[0], &PodemConfig::default()) {
        PodemResult::Test(p) => {
            assert_eq!(p.len(), 5, "one cube entry per PI");
            assert_eq!(fill_cube(&p, false).len(), 5);
        }
        other => panic!("c17 is fully testable, got {other:?}"),
    }
    let (_, report) = AtpgEngine::run_collapsed(&c17, AtpgConfig::default());
    assert_eq!(report.testable_coverage(), 1.0);
}

/// `sinw-core`: run the cheapest paper driver (Table I needs no analog).
#[test]
fn core_api_reachable() {
    use sinw_core::process::census;
    use sinw_switch::cells::CellKind;

    let t1 = sinw_core::experiments::Experiments::fast().table1();
    assert_eq!(t1.cells.len(), CellKind::ALL.len());
    assert_eq!(census(CellKind::Inv).total(), 18);
}

/// The `sinw` umbrella re-exports resolve to the same crates.
#[test]
fn umbrella_reexports_are_the_real_crates() {
    let via_umbrella = sinw::switch::cells::Cell::build(sinw::switch::cells::CellKind::Maj3);
    let direct = sinw_switch::cells::Cell::build(sinw_switch::cells::CellKind::Maj3);
    // Same type through both paths — this line fails to compile if the
    // umbrella ever re-exports a different crate version.
    assert_eq!(via_umbrella.transistors.len(), direct.transistors.len());
}

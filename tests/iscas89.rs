//! Golden end-to-end tests of the sequential layer on the embedded
//! ISCAS-89 `s27` fixture: pinned structure and fault counts, the scan
//! shape, full stuck-at coverage through the **unchanged** campaign
//! engine, transition-delay LOC coverage with engine bit-identity, the
//! textual fixed point of the sequential exporter, and the line-numbered
//! error contract around `DFF` lines.

use sinw::atpg::tpg::{AtpgConfig, AtpgEngine};
use sinw::atpg::transition::{
    enumerate_transition, simulate_transition_lanes, simulate_transition_serial,
    simulate_transition_threaded, transition_oracle, TransitionAtpg, TransitionAtpgConfig,
};
use sinw::atpg::{collapse, enumerate_stuck_at, SUPPORTED_LANES};
use sinw::switch::iscas::{parse_bench, parse_bench_seq, to_bench_seq, BenchErrorKind, S27_BENCH};
use sinw::switch::scan::{insert_scan, ScanPlan};

/// s27's shape is pinned: 4 functional inputs, 1 functional output,
/// 3 flip-flops, and 13 CP cell instances after mapping the 10 `.bench`
/// gates onto the INV/NAND2/NOR2 library.
#[test]
fn s27_structure_is_pinned() {
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    assert_eq!(s27.functional_inputs().len(), 4);
    assert_eq!(s27.functional_outputs().len(), 1);
    assert_eq!(s27.state_width(), 3);
    assert_eq!(s27.core().gates().len(), 13, "CP cell instances");
    let dff_names: Vec<&str> = s27.dffs().iter().map(|ff| ff.name.as_str()).collect();
    assert_eq!(dff_names, ["G5", "G6", "G7"]);

    // The fault universe of the per-frame view: 56 transition faults,
    // one per stuck-at fault, collapsing to 30 representatives.
    let scan = insert_scan(&s27, &ScanPlan::Full);
    let sa = enumerate_stuck_at(scan.circuit());
    assert_eq!(sa.len(), 56, "stuck-at universe of the scan view");
    assert_eq!(enumerate_transition(scan.circuit()).len(), sa.len());
    assert_eq!(
        collapse(scan.circuit(), &sa).representatives.len(),
        30,
        "collapsed representatives"
    );
}

/// Full-scan insertion is purely additive: same signals, same gates,
/// three scan cells, and the three `D` nets join the PO list.
#[test]
fn s27_scan_shape_is_pinned() {
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    let scan = insert_scan(&s27, &ScanPlan::Full);
    assert!(scan.is_full_scan());
    assert_eq!(scan.cells().len(), 3);
    assert_eq!(scan.residual().len(), 0);
    assert_eq!(scan.circuit().gates().len(), s27.core().gates().len());
    assert_eq!(
        scan.circuit().signal_count(),
        s27.core().signal_count(),
        "scan insertion adds no signals"
    );
    assert_eq!(scan.functional_po_count(), 1);
    assert_eq!(
        scan.circuit().primary_outputs().len(),
        4,
        "1 functional PO + 3 distinct scan-outs"
    );
    assert_eq!(scan.scan_out_positions().len(), 3);

    // Partial scan keeps the unscanned flip-flop in the residual machine.
    let partial = insert_scan(&s27, &ScanPlan::Partial(vec![0, 2]));
    assert!(!partial.is_full_scan());
    assert_eq!(partial.cells().len(), 2);
    assert_eq!(partial.residual().len(), 1);
    assert_eq!(partial.residual()[0].name, "G6");
}

/// The acceptance criterion: the full-scan per-frame view reaches 100%
/// testable stuck-at coverage through the *unchanged* [`AtpgEngine`] —
/// no sequential-aware code in the campaign loop.
#[test]
fn s27_full_scan_reaches_full_stuck_at_coverage() {
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    let scan = insert_scan(&s27, &ScanPlan::Full);
    let (collapsed, report) = AtpgEngine::run_collapsed(scan.circuit(), AtpgConfig::default());
    assert_eq!(collapsed.representatives.len(), 30);
    assert_eq!(report.aborted, 0);
    assert_eq!(
        report.testable_coverage(),
        1.0,
        "full scan makes every testable s27 fault reachable per-frame \
         ({} detected, {} untestable)",
        report.detected(),
        report.untestable
    );
}

/// Transition-delay LOC ATPG on s27: pinned classification under the
/// default seed, pair-set verification by the independent oracle, and
/// bit-identical detection reports across every lane width, the serial
/// engine, and several thread counts.
#[test]
fn s27_transition_campaign_is_pinned_and_engine_identical() {
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    let engine = TransitionAtpg::new(&s27, TransitionAtpgConfig::default());
    let faults = enumerate_transition(engine.circuit());
    assert_eq!(faults.len(), 56);
    let report = engine.run(&faults);
    assert_eq!(report.aborted, 0);
    assert_eq!(
        report.testable_coverage(),
        1.0,
        "every testable transition fault detected ({} of {}, {} untestable)",
        report.detected_random + report.detected_deterministic,
        report.total_faults,
        report.untestable
    );
    assert!(!report.pairs.is_empty());

    // The produced pairs re-verify identically on every engine, and the
    // independent scalar oracle agrees with the classification.
    let oracle = transition_oracle(engine.circuit(), &faults, &report.pairs);
    let classified: Vec<usize> = report
        .statuses
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_detected())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(oracle.detected, classified);
    for drop in [false, true] {
        for lanes in SUPPORTED_LANES {
            assert_eq!(
                simulate_transition_lanes(engine.circuit(), &faults, &report.pairs, drop, lanes),
                oracle,
                "lanes {lanes}, drop {drop}"
            );
        }
        assert_eq!(
            simulate_transition_serial(engine.circuit(), &faults, &report.pairs, drop),
            oracle
        );
        for threads in [2usize, 0] {
            assert_eq!(
                simulate_transition_threaded(
                    engine.circuit(),
                    &faults,
                    &report.pairs,
                    drop,
                    threads
                ),
                oracle
            );
        }
    }
}

/// `parse → to_bench_seq → parse` reaches a textual fixed point, DFF
/// lines included, and the re-parse is cycle-accurate against the
/// original machine.
#[test]
fn s27_export_reaches_a_textual_fixed_point() {
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    let text1 = to_bench_seq(&s27, "s27");
    assert!(text1.contains("G5 = DFF("), "DFF lines survive export");
    let re = parse_bench_seq(&text1).expect("exported text parses");
    assert_eq!(re.state_width(), 3);
    let text2 = to_bench_seq(&re, "s27");
    assert_eq!(text1, text2, "one trip reaches the fixed point");

    // Cycle-accurate agreement over a short stimulus.
    use sinw::switch::value::Logic;
    let state0 = vec![Logic::Zero; 3];
    let stim: Vec<Vec<Logic>> = (0..8u8)
        .map(|t| (0..4).map(|k| Logic::from_bool(t >> k & 1 == 1)).collect())
        .collect();
    assert_eq!(s27.simulate(&state0, &stim), re.simulate(&state0, &stim));
}

/// Malformed sequential input keeps the line-numbered error contract:
/// a `DFF` in combinational-only parsing, a two-input `DFF`, and an
/// undriven `D` net all name their exact 1-based line.
#[test]
fn sequential_errors_are_pinned_to_their_lines() {
    // The combinational parser rejects s27 at its first DFF line.
    let e = parse_bench(S27_BENCH).expect_err("combinational parse must reject DFFs");
    assert_eq!(e.line, 8, "first DFF line of the fixture");
    match &e.kind {
        BenchErrorKind::SequentialElement(net) => assert_eq!(net, "G5"),
        other => panic!("expected SequentialElement, got {other:?}"),
    }
    assert!(
        e.to_string().contains("parse_bench_seq"),
        "the error must point at the sequential entry point: {e}"
    );

    // A DFF with two inputs is a BadArity at its own line.
    let e = parse_bench_seq("INPUT(a)\nOUTPUT(q)\nb = NOT(a)\nq = DFF(a, b)\n")
        .expect_err("two-input DFF");
    assert_eq!(e.line, 4);
    assert!(
        matches!(e.kind, BenchErrorKind::BadArity { .. }),
        "{:?}",
        e.kind
    );

    // A DFF whose D net nothing drives reports the DFF's line.
    let e = parse_bench_seq("INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n").expect_err("undriven D net");
    assert_eq!(e.line, 3);
    assert!(
        matches!(e.kind, BenchErrorKind::UndrivenNet(_)),
        "{:?}",
        e.kind
    );

    // An unknown gate type names itself, its line, and the supported set.
    let e = parse_bench_seq("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n").expect_err("unknown gate");
    assert_eq!(e.line, 3);
    let msg = e.to_string();
    for g in [
        "AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUFF", "DFF",
    ] {
        assert!(msg.contains(g), "supported set must name {g}: {msg}");
    }
}

//! Golden end-to-end tests of the ATPG campaign engine: pinned coverage
//! and classification numbers on the embedded fixtures, compaction
//! soundness, and — the acceptance criterion — the final compacted
//! pattern set re-verified by an independent `simulate_faults` pass.

use sinw::atpg::faultsim::{seeded_patterns, simulate_faults};
use sinw::atpg::tpg::{AtpgConfig, AtpgEngine, FaultStatus};
use sinw::core::experiments::{atpg_campaign, benchmark_suite};
use sinw::switch::iscas::{parse_bench, C17_BENCH, CSA16_BENCH};

/// c17: 22 collapsed faults, all testable; the random phase plus
/// dropping leaves nothing for PODEM, and the compacted set still covers
/// everything — verified by an independent simulation pass.
#[test]
fn c17_campaign_reaches_full_coverage() {
    let c17 = parse_bench(C17_BENCH).expect("embedded c17 parses");
    let (collapsed, report) = AtpgEngine::run_collapsed(&c17, AtpgConfig::default());
    assert_eq!(report.total_faults, 22, "c17 collapsed universe");
    assert_eq!(report.untestable, 0, "c17 has no redundant faults");
    assert_eq!(report.aborted, 0);
    assert_eq!(report.detected(), 22);
    assert_eq!(report.testable_coverage(), 1.0);
    assert!(
        report.podem_calls < report.total_faults,
        "the deterministic phase must target strictly fewer faults than \
         the collapsed universe (got {} of {})",
        report.podem_calls,
        report.total_faults
    );
    // Final pattern count bounds: compaction has to do real work on the
    // random-phase keeps (exhaustive lower bound for c17 is 4 patterns).
    assert!(
        (4..=10).contains(&report.patterns.len()),
        "c17 final set out of bounds: {} patterns",
        report.patterns.len()
    );
    assert!(report.patterns.len() <= report.patterns_before_compaction);
    // Independent verification (public PPSFP engine, not the campaign's
    // internal kernel calls).
    let check = simulate_faults(&c17, &collapsed.representatives, &report.patterns, true);
    assert_eq!(check.detected.len(), 22, "compacted set re-verified");
}

/// csa16: 626 collapsed faults of which exactly three — the select-pin
/// faults of the speculative carry muxes — are redundant (proven by the
/// static prover, not aborted), and every testable fault is detected.
#[test]
fn csa16_campaign_reaches_full_testable_coverage() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    let (collapsed, report) = AtpgEngine::run_collapsed(&csa, AtpgConfig::default());
    assert_eq!(report.total_faults, 626, "csa16 collapsed universe");
    assert_eq!(
        report.untestable, 3,
        "the three carry-select mux redundancies are proven, not aborted"
    );
    assert_eq!(report.aborted, 0, "no fault is abandoned");
    assert_eq!(report.detected(), 623);
    assert_eq!(report.testable_coverage(), 1.0);
    assert!(report.podem_calls < report.total_faults);
    assert!(
        report.patterns.len() <= 64,
        "csa16 compacted set stays small: {} patterns",
        report.patterns.len()
    );
    assert!(report.patterns.len() <= report.patterns_before_compaction);
    // Independent verification of the compacted set.
    let check = simulate_faults(&csa, &collapsed.representatives, &report.patterns, true);
    assert_eq!(check.detected.len(), 623, "compacted set re-verified");
    // The redundancy verdicts hold up against a large random barrage.
    let untestable: Vec<_> = collapsed
        .representatives
        .iter()
        .zip(&report.statuses)
        .filter(|(_, s)| **s == FaultStatus::Untestable)
        .map(|(f, _)| *f)
        .collect();
    assert_eq!(untestable.len(), 3);
    let barrage = seeded_patterns(csa.primary_inputs().len(), 2048, 0xBAD_CAFE);
    let red = simulate_faults(&csa, &untestable, &barrage, false);
    assert!(
        red.detected.is_empty(),
        "a fault classified Untestable was detected"
    );
}

/// Reverse-order compaction never reduces coverage: with and without
/// compaction the same faults are detected, and the compacted set is no
/// larger.
#[test]
fn compaction_never_reduces_coverage() {
    for text in [C17_BENCH, CSA16_BENCH] {
        let c = parse_bench(text).expect("embedded fixture parses");
        let config = AtpgConfig::default();
        let (collapsed, full) = AtpgEngine::run_collapsed(&c, config);
        let (_, raw) = AtpgEngine::run_collapsed(
            &c,
            AtpgConfig {
                compact: false,
                ..config
            },
        );
        assert_eq!(full.detected(), raw.detected(), "compaction lost faults");
        assert!(full.patterns.len() <= raw.patterns.len());
        let a = simulate_faults(&c, &collapsed.representatives, &full.patterns, true);
        let b = simulate_faults(&c, &collapsed.representatives, &raw.patterns, true);
        assert_eq!(a.detected, b.detected, "same detected set either way");
    }
}

/// Starving the random phase forces the deterministic phase to do the
/// work — and it still reaches full testable coverage, with collateral
/// dropping keeping the PODEM call count strictly below the universe.
#[test]
fn deterministic_phase_carries_a_starved_random_phase() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    let config = AtpgConfig {
        max_random_blocks: 1,
        random_window: 1,
        ..AtpgConfig::default()
    };
    let (collapsed, report) = AtpgEngine::run_collapsed(&csa, config);
    assert!(report.podem_calls > 0, "PODEM must engage");
    assert!(report.podem_calls < collapsed.representatives.len());
    assert_eq!(report.aborted, 0);
    assert_eq!(report.testable_coverage(), 1.0);
    assert!(report.detected_deterministic > 0);
    let check = simulate_faults(&csa, &collapsed.representatives, &report.patterns, true);
    assert_eq!(check.detected.len(), report.detected());
}

/// The experiments driver: every benchmark row reaches 100 % coverage of
/// its testable collapsed faults and every final pattern set re-verifies
/// under an independent `simulate_faults` pass.
#[test]
fn atpg_campaign_driver_rows_are_verified() {
    let result = atpg_campaign(true);
    let suite = benchmark_suite(true);
    assert_eq!(result.rows.len(), suite.len());
    for ((name, _, circuit), row) in suite.iter().zip(&result.rows) {
        assert_eq!(&row.name, name);
        let rep = &row.report;
        assert_eq!(rep.aborted, 0, "{name}: aborted faults");
        assert_eq!(rep.testable_coverage(), 1.0, "{name}: coverage");
        assert!(
            rep.podem_calls < row.collapsed,
            "{name}: deterministic phase must target fewer faults than \
             the collapsed universe"
        );
        assert!(!rep.patterns.is_empty(), "{name}: empty pattern set");
        assert!(rep.patterns.len() <= rep.patterns_before_compaction);
        // Re-verify each compacted set independently: re-collapse and
        // fault-simulate from scratch.
        let faults = sinw::atpg::fault_list::enumerate_stuck_at(circuit);
        let collapsed = sinw::atpg::collapse::collapse(circuit, &faults);
        assert_eq!(collapsed.representatives.len(), row.collapsed);
        let check = simulate_faults(circuit, &collapsed.representatives, &rep.patterns, true);
        assert_eq!(check.detected.len(), rep.detected(), "{name}: verification");
    }
    let c17 = result.row("c17").expect("driver includes c17");
    assert_eq!(c17.report.testable_coverage(), 1.0);
    let csa16 = result.row("csa16").expect("driver includes csa16");
    assert_eq!(csa16.report.untestable, 3);
}

//! Whole-flow integration: classical ATPG and the cell-aware campaign on
//! multi-gate TIG circuits.

use sinw_atpg::collapse::collapse;
use sinw_atpg::fault_list::enumerate_stuck_at;
use sinw_atpg::faultsim::simulate_faults;
use sinw_atpg::podem::{fill_cube, generate_test, PodemConfig, PodemResult};
use sinw_core::cell_aware::{generate_campaign, LiftedTest};
use sinw_core::dictionary::{build_dictionary, CellDictionary};
use sinw_device::{TigFet, TigTable};
use sinw_switch::cells::CellKind;
use sinw_switch::gate::Circuit;
use std::sync::{Arc, OnceLock};

fn dictionaries() -> &'static [(CellKind, CellDictionary)] {
    static DICTS: OnceLock<Vec<(CellKind, CellDictionary)>> = OnceLock::new();
    DICTS.get_or_init(|| {
        let table = Arc::new(TigTable::build_coarse(&TigFet::ideal()));
        [CellKind::Xor2, CellKind::Xor3, CellKind::Maj3]
            .into_iter()
            .map(|k| (k, build_dictionary(k, &table)))
            .collect()
    })
}

#[test]
fn classical_atpg_covers_the_ripple_adder() {
    let c = Circuit::ripple_adder(3);
    let faults = enumerate_stuck_at(&c);
    let collapsed = collapse(&c, &faults);
    let config = PodemConfig::default();

    let mut patterns = Vec::new();
    let mut untestable = 0usize;
    for fault in &collapsed.representatives {
        match generate_test(&c, *fault, &config) {
            PodemResult::Test(p) => patterns.push(fill_cube(&p, false)),
            PodemResult::Untestable => untestable += 1,
            PodemResult::Aborted => panic!("aborted on {}", fault.describe(&c)),
        }
    }
    assert_eq!(untestable, 0, "the adder has no redundant stuck-at faults");

    // The generated set must detect every original (uncollapsed) fault.
    let report = simulate_faults(&c, &faults, &patterns, true);
    assert_eq!(
        report.coverage(),
        1.0,
        "undetected: {:?}",
        report
            .undetected
            .iter()
            .map(|i| faults[*i].describe(&c))
            .collect::<Vec<_>>()
    );
}

#[test]
fn cell_aware_campaign_on_mixed_circuit() {
    // A mixed SP/DP circuit: parity tree into a NAND stage.
    let mut c = Circuit::new();
    let a = c.add_input("a");
    let b = c.add_input("b");
    let d = c.add_input("d");
    let x1 = c.add_gate(CellKind::Xor2, "x1", &[a, b]);
    let x2 = c.add_gate(CellKind::Xor2, "x2", &[x1, d]);
    let n1 = c.add_gate(CellKind::Nand2, "n1", &[x1, x2]);
    c.mark_output(x2);
    c.mark_output(n1);

    let config = PodemConfig::default();
    let dict_of = |kind: CellKind| -> Option<CellDictionary> {
        dictionaries()
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| d.clone())
    };
    let campaign = generate_campaign(&c, &dict_of, &config);

    let mut output_tests = 0usize;
    let mut iddq_tests = 0usize;
    let mut two_pattern = 0usize;
    let mut needs_access = 0usize;
    let mut uncovered = 0usize;
    for (target, lifted) in &campaign {
        match lifted {
            Some(LiftedTest::OutputObservable { .. }) => output_tests += 1,
            Some(LiftedTest::IddqObservable { .. }) => iddq_tests += 1,
            Some(LiftedTest::TwoPattern { .. }) => two_pattern += 1,
            Some(LiftedTest::NeedsPolarityAccess) => needs_access += 1,
            None => {
                // Only NAND polarity faults lack a dictionary here.
                assert_eq!(
                    c.gates()[target.gate.0].kind,
                    CellKind::Nand2,
                    "unexpected uncovered target {target:?}"
                );
                uncovered += 1;
            }
        }
    }
    assert!(output_tests > 0, "some polarity faults lift to PO tests");
    assert!(iddq_tests > 0, "pull-up faults fall back to IDDQ vectors");
    assert!(two_pattern >= 4, "NAND breaks get two-pattern tests");
    assert_eq!(needs_access, 8, "XOR2 breaks need the new algorithm");
    let _ = uncovered;
}

#[test]
fn sof_two_pattern_tests_work_on_the_flat_netlist() {
    use sinw_atpg::sof::{generate_sof_test, SofResult};
    use sinw_switch::fault::{FaultSet, TransistorFault};
    use sinw_switch::gate::GateId;
    use sinw_switch::sim::SwitchSim;
    use sinw_switch::value::Logic;

    let c = Circuit::c17();
    let config = PodemConfig::default();
    let flat = c.flatten();
    let mut validated = 0usize;

    for gi in 0..c.gates().len() {
        for t in 0..4 {
            let SofResult::Test(test) = generate_sof_test(&c, GateId(gi), t, &config) else {
                continue;
            };
            // Replay the two-pattern sequence against the flat netlist
            // with the break injected; a PO must read the wrong value.
            let tid = flat.gate_transistors[gi][t];
            let mut sick = SwitchSim::with_faults(
                &flat.netlist,
                FaultSet::single(tid, TransistorFault::ChannelBreak),
            );
            let assign = |p: &[bool]| -> Vec<(sinw_switch::netlist::NetId, Logic)> {
                c.primary_inputs()
                    .iter()
                    .zip(p)
                    .map(|(s, b)| (flat.signal_net[s.0], Logic::from_bool(*b)))
                    .collect()
            };
            sick.apply(&assign(&test.init));
            let r = sick.apply(&assign(&test.eval));
            let good = c.eval_outputs(&test.eval);
            let wrong = c
                .primary_outputs()
                .iter()
                .enumerate()
                .any(|(k, o)| r.value(flat.signal_net[o.0]) != good[k]);
            assert!(
                wrong,
                "gate {gi} t{}: sequence {:?} -> {:?} shows nothing",
                t + 1,
                test.init,
                test.eval
            );
            validated += 1;
        }
    }
    assert!(validated >= 15, "validated only {validated} SOF tests");
}

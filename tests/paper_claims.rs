//! End-to-end assertions of the paper's quantitative claims, via the
//! experiment drivers (the same code paths the benches print).

use sinw_core::experiments::Experiments;
use sinw_device::geometry::GateTerminal;
use sinw_switch::cells::CellKind;
use std::sync::OnceLock;

fn ctx() -> &'static Experiments {
    static CTX: OnceLock<Experiments> = OnceLock::new();
    CTX.get_or_init(Experiments::fast)
}

#[test]
fn fig2_all_cells_functional() {
    assert!(ctx().fig2().all_correct());
}

#[test]
fn fig3_gos_shape() {
    let fig3 = ctx().fig3();
    let row = |site: GateTerminal| {
        fig3.rows
            .iter()
            .find(|r| r.site == site)
            .expect("site present")
    };
    let pgs = row(GateTerminal::Pgs);
    assert!(pgs.sat_ratio > 0.03 && pgs.sat_ratio < 0.6, "{pgs:?}");
    assert!(
        pgs.delta_vth_mv > 20.0 && pgs.delta_vth_mv < 300.0,
        "{pgs:?}"
    );
    assert!(pgs.negative_id_at_low_vds);
    let cg = row(GateTerminal::Cg);
    assert!(
        cg.sat_ratio > pgs.sat_ratio && cg.sat_ratio < 0.97,
        "{cg:?}"
    );
    assert!(cg.delta_vth_mv > 40.0 && cg.delta_vth_mv < 350.0, "{cg:?}");
    assert!(cg.negative_id_at_low_vds);
    let pgd = row(GateTerminal::Pgd);
    assert!(pgd.sat_ratio > 0.95 && pgd.sat_ratio < 1.2, "{pgd:?}");
    assert!(pgd.delta_vth_mv.abs() < 40.0, "{pgd:?}");
}

#[test]
fn fig4_density_shape() {
    let fig4 = ctx().fig4();
    let pgs = fig4.ratio(GateTerminal::Pgs);
    let cg = fig4.ratio(GateTerminal::Cg);
    let pgd = fig4.ratio(GateTerminal::Pgd);
    // Paper: 109.2x / 8.8x / 11.8x with ordering PGS >> PGD > CG.
    assert!(pgs > 50.0 && pgs < 250.0, "PGS ratio {pgs}");
    assert!(cg > 5.0 && cg < 15.0, "CG ratio {cg}");
    assert!(pgd > 8.0 && pgd < 20.0, "PGD ratio {pgd}");
    assert!(pgs > pgd && pgd > cg, "ordering {pgs} {pgd} {cg}");
    assert!(
        fig4.n_healthy > 5e18 && fig4.n_healthy < 5e19,
        "healthy {:.3e}",
        fig4.n_healthy
    );
}

#[test]
fn fig5_inv_t1_has_decades_of_leakage_swing() {
    let sweep = ctx().fig5(CellKind::Inv, 0);
    assert!(
        sweep.leakage_swing() > 1e2,
        "leakage swing {:.3e}",
        sweep.leakage_swing()
    );
    // The nominal bias point (Vcut = 0 for a pull-up PG) must be fast and
    // quiet; the wrong end of the sweep must degrade delay or kill the
    // transition entirely.
    let first = sweep.points.first().expect("points");
    assert!(first.delay_pgs_open.is_finite());
    let last = sweep.points.last().expect("points");
    let degraded = !last.delay_pgs_open.is_finite()
        || last.delay_pgs_open > 1.5 * first.delay_pgs_open
        || last.leak_pgs_open > 50.0 * first.leak_pgs_open;
    assert!(degraded, "first {first:?} last {last:?}");
}

#[test]
fn table3_matches_the_paper() {
    let dict = ctx().table3();
    assert!(dict.complete(), "every polarity fault detectable");
    // Stuck-at-n detecting vectors per Table III.
    use sinw_switch::fault::TransistorFault::StuckAtNType;
    let expected = [
        vec![false, false],
        vec![true, true],
        vec![false, true],
        vec![true, false],
    ];
    for (t, want) in expected.iter().enumerate() {
        assert!(
            dict.detecting(t, StuckAtNType)
                .iter()
                .any(|e| &e.vector == want),
            "t{} missing vector {want:?}",
            t + 1
        );
    }
}

#[test]
fn sec5b_leakage_swing_above_1e5() {
    let r = ctx().sec5b();
    let xor = r
        .rows
        .iter()
        .find(|(k, _, _)| *k == CellKind::Xor2)
        .expect("xor2 analysed");
    assert!(xor.1 > 1e5, "XOR2 swing {:.3e} (paper: >1e6)", xor.1);
    assert!(xor.2, "XOR2 dictionary complete");
}

#[test]
fn sec5c_masking_and_new_algorithm() {
    let r = ctx().sec5c();
    for row in &r.rows {
        // Masking: the break hides from functional, IDDQ and delay tests
        // (paper: dLeak <= 100 %, dDelay <= 58 %).
        assert!(
            row.functionality_intact,
            "t{}: break must not change the function",
            row.transistor + 1
        );
        assert!(
            row.leakage_ratio < 20.0,
            "t{}: leak ratio {:.2} not masked",
            row.transistor + 1,
            row.leakage_ratio
        );
        if row.delay_ratio.is_finite() {
            assert!(
                row.delay_ratio < 2.5,
                "t{}: delay ratio {:.2}",
                row.transistor + 1,
                row.delay_ratio
            );
        }
        // Baseline fails, the paper's algorithm succeeds.
        assert!(!row.sof_testable, "t{}", row.transistor + 1);
        assert!(row.new_algorithm_works, "t{}", row.transistor + 1);
    }
    // The paper's NAND reference pairs.
    let t = |s: &str| -> Vec<bool> { s.chars().map(|c| c == '1').collect() };
    let pair = |i: &str, e: &str| sinw_atpg::sof::TwoPattern {
        init: t(i),
        eval: t(e),
    };
    assert!(r.nand_pairs[0].1.contains(&pair("11", "01")), "v1");
    assert!(r.nand_pairs[1].1.contains(&pair("11", "10")), "v2");
    assert!(r.nand_pairs[2].1.contains(&pair("00", "11")), "v3");
    assert!(r.nand_pairs[3].1.contains(&pair("00", "11")), "v3 on t4");
}

#[test]
fn table1_classification_summary() {
    let t1 = ctx().table1();
    for row in &t1.cells {
        if row.kind.is_dynamic_polarity() {
            assert!(
                row.needs_new > 0,
                "{}: DP cells have a coverage gap",
                row.kind
            );
        } else {
            assert_eq!(row.needs_new, 0, "{}: SP cells are classical", row.kind);
        }
    }
}

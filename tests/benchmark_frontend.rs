//! End-to-end tests of the benchmark workload subsystem: the `.bench`
//! frontend, the fault pipeline on the embedded fixtures, and the
//! engine-agreement acceptance criterion of the PPSFP work.

use sinw::atpg::collapse::collapse;
use sinw::atpg::fault_list::enumerate_stuck_at;
use sinw::atpg::faultsim::{
    seeded_patterns, simulate_faults, simulate_faults_full_pass, simulate_faults_serial,
    simulate_faults_threaded,
};
use sinw::core::experiments::{benchmark_suite, fault_coverage};
use sinw::switch::iscas::{parse_bench, C17_BENCH, CSA16_BENCH};

fn exhaustive_patterns(n_pi: usize) -> Vec<Vec<bool>> {
    (0..(1u32 << n_pi))
        .map(|bits| (0..n_pi).map(|k| (bits >> k) & 1 == 1).collect())
        .collect()
}

/// Golden numbers for c17: the full stuck-at universe has 22 stem + 12
/// branch faults; NAND input/output equivalences collapse it to 22; the
/// exhaustive pattern set detects every representative.
#[test]
fn c17_stuck_at_coverage_golden() {
    let c17 = parse_bench(C17_BENCH).expect("embedded c17 parses");
    let faults = enumerate_stuck_at(&c17);
    assert_eq!(faults.len(), 34, "c17 single-stuck-at universe");
    let collapsed = collapse(&c17, &faults);
    assert_eq!(
        collapsed.representatives.len(),
        22,
        "c17 collapsed universe"
    );
    let patterns = exhaustive_patterns(5);
    let report = simulate_faults_threaded(&c17, &collapsed.representatives, &patterns, true, 0);
    assert_eq!(report.detected.len(), 22);
    assert_eq!(report.undetected.len(), 0);
    assert_eq!(report.coverage(), 1.0, "c17 is fully testable");
}

/// The acceptance criterion: parsing the embedded c17, collapsing, and
/// running thread-parallel PPSFP yields the same detected-fault set as
/// the serial engine.
#[test]
fn c17_thread_parallel_matches_serial() {
    let c17 = parse_bench(C17_BENCH).expect("embedded c17 parses");
    let faults = enumerate_stuck_at(&c17);
    let collapsed = collapse(&c17, &faults);
    let patterns = exhaustive_patterns(5);
    let serial = simulate_faults_serial(&c17, &collapsed.representatives, &patterns, true);
    for threads in [1usize, 2, 5, 0] {
        let threaded =
            simulate_faults_threaded(&c17, &collapsed.representatives, &patterns, true, threads);
        assert_eq!(threaded, serial, "threads = {threads}");
    }
}

/// Engine agreement on the mid-size embedded fixture with a random
/// pattern set (csa16 is too wide for exhaustive application). The
/// retained full-pass oracle must agree with the three event-driven
/// engines bit for bit.
#[test]
fn csa16_engines_agree() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    let faults = enumerate_stuck_at(&csa);
    let collapsed = collapse(&csa, &faults);
    let patterns = seeded_patterns(csa.primary_inputs().len(), 96, 0xDEAD_BEEF);
    let serial = simulate_faults_serial(&csa, &collapsed.representatives, &patterns, true);
    let block = simulate_faults(&csa, &collapsed.representatives, &patterns, true);
    let threaded = simulate_faults_threaded(&csa, &collapsed.representatives, &patterns, true, 3);
    let full_pass = simulate_faults_full_pass(&csa, &collapsed.representatives, &patterns, true);
    assert_eq!(serial, block);
    assert_eq!(serial, threaded);
    assert_eq!(serial, full_pass);
    assert!(
        serial.coverage() > 0.9,
        "random patterns cover most of csa16"
    );
}

/// Golden numbers for the mid-size embedded fixture, companion to the c17
/// golden above: the csa16 stuck-at universe, its collapse, and the
/// coverage of the deterministic 96-pattern seeded set are pinned so a
/// kernel change that silently shifts any stage of the pipeline fails
/// loudly here.
#[test]
fn csa16_stuck_at_coverage_golden() {
    let csa = parse_bench(CSA16_BENCH).expect("embedded csa16 parses");
    assert_eq!(csa.gates().len(), 308, "csa16 maps to 308 CP cells");
    let faults = enumerate_stuck_at(&csa);
    assert_eq!(faults.len(), 1192, "csa16 single-stuck-at universe");
    let collapsed = collapse(&csa, &faults);
    assert_eq!(
        collapsed.representatives.len(),
        626,
        "csa16 collapsed universe"
    );
    let patterns = seeded_patterns(csa.primary_inputs().len(), 96, 0xDEAD_BEEF);
    let report = simulate_faults_threaded(&csa, &collapsed.representatives, &patterns, true, 0);
    assert_eq!(report.detected.len(), 620);
    assert_eq!(report.undetected.len(), 6);
    let coverage = report.coverage();
    assert!(
        (coverage - 620.0 / 626.0).abs() < 1e-12,
        "csa16 coverage pinned at 620/626, got {coverage}"
    );
}

/// The full driver: every benchmark flows through parse → map → collapse
/// → simulate, c17 reaches full coverage, and nothing reports an empty
/// universe.
#[test]
fn fault_coverage_driver_covers_the_suite() {
    let result = fault_coverage(true);
    assert_eq!(result.rows.len(), benchmark_suite(true).len());
    for row in &result.rows {
        assert!(row.cells > 0, "{} maps to cells", row.name);
        assert!(
            row.collapsed > 0 && row.collapsed <= row.faults,
            "{}",
            row.name
        );
        assert!(row.coverage > 0.9, "{} coverage {}", row.name, row.coverage);
        assert!(
            row.effective_test_length <= row.patterns,
            "{} test length bounded",
            row.name
        );
    }
    let c17 = result.row("c17").expect("driver includes c17");
    assert!(c17.exhaustive);
    assert_eq!(c17.coverage, 1.0);
}

//! Cross-representation integration tests: every Fig. 2 cell must compute
//! the same function at the switch level, the analog level and the
//! gate-level functional model, and flattened circuits must agree with
//! their gate-level view.

use sinw_analog::cells::{AnalogCell, VDD};
use sinw_analog::circuit::Waveform;
use sinw_analog::solver::{dc, SolverOpts};
use sinw_device::{TigFet, TigTable};
use sinw_switch::cells::{Cell, CellKind};
use sinw_switch::gate::Circuit;
use sinw_switch::sim::SwitchSim;
use sinw_switch::value::Logic;
use std::sync::{Arc, OnceLock};

fn shared_table() -> Arc<TigTable> {
    static TABLE: OnceLock<Arc<TigTable>> = OnceLock::new();
    TABLE
        .get_or_init(|| Arc::new(TigTable::build_coarse(&TigFet::ideal())))
        .clone()
}

#[test]
fn all_cells_agree_across_switch_and_analog() {
    for kind in CellKind::ALL {
        let cell = Cell::build(kind);
        let n = kind.input_count();
        for bits in 0..(1u32 << n) {
            let vector: Vec<bool> = (0..n).map(|k| (bits >> k) & 1 == 1).collect();
            let expect = kind.function(&vector);

            // Switch level.
            assert_eq!(
                cell.eval(&vector),
                Logic::from_bool(expect),
                "{kind} switch level at {vector:?}"
            );

            // Analog level.
            let waves: Vec<Waveform> = vector
                .iter()
                .map(|b| Waveform::Dc(if *b { VDD } else { 0.0 }))
                .collect();
            let acell = AnalogCell::build(kind, shared_table(), &waves);
            let sol = dc(&acell.circuit, &SolverOpts::default())
                .unwrap_or_else(|e| panic!("{kind} analog DC at {vector:?}: {e}"));
            let v = sol.voltage(acell.out);
            assert_eq!(
                v > VDD / 2.0,
                expect,
                "{kind} analog level at {vector:?}: v_out = {v:.3}"
            );
        }
    }
}

#[test]
fn flattened_ripple_adder_matches_gate_level() {
    let c = Circuit::ripple_adder(2);
    let flat = c.flatten();
    let n_pi = c.primary_inputs().len();
    for bits in 0..(1u32 << n_pi) {
        let vector: Vec<bool> = (0..n_pi).map(|k| (bits >> k) & 1 == 1).collect();
        let gate_outs = c.eval_outputs(&vector);
        let mut sim = SwitchSim::new(&flat.netlist);
        let assignment: Vec<_> = c
            .primary_inputs()
            .iter()
            .zip(&vector)
            .map(|(s, b)| (flat.signal_net[s.0], Logic::from_bool(*b)))
            .collect();
        let r = sim.apply(&assignment);
        assert!(!r.rail_short, "healthy adder shorting at {vector:?}");
        for (k, o) in c.primary_outputs().iter().enumerate() {
            assert_eq!(
                r.value(flat.signal_net[o.0]),
                gate_outs[k],
                "output {k} at {vector:?}"
            );
        }
    }
}

#[test]
fn analog_cells_have_no_static_shorts() {
    // Quiescent current of every healthy cell at every vector stays far
    // below the functional-short scale.
    for kind in CellKind::ALL {
        let n = kind.input_count();
        for bits in 0..(1u32 << n) {
            let vector: Vec<bool> = (0..n).map(|k| (bits >> k) & 1 == 1).collect();
            let waves: Vec<Waveform> = vector
                .iter()
                .map(|b| Waveform::Dc(if *b { VDD } else { 0.0 }))
                .collect();
            let cell = AnalogCell::build(kind, shared_table(), &waves);
            let leak = sinw_analog::measure::dc_leakage(&cell, &SolverOpts::default())
                .unwrap_or_else(|e| panic!("{kind} at {vector:?}: {e}"));
            assert!(leak < 1e-6, "{kind} at {vector:?}: leak = {leak:.3e}");
        }
    }
}

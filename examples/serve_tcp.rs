//! ATPG over the wire: the TCP transport demo.
//!
//! Boots a loopback [`NetServer`](sinw::server::net::NetServer) backed
//! by a scratch snapshot store, then drives the whole protocol from a
//! [`NetClient`](sinw::server::net::NetClient): registers each demo
//! circuit cold and warm (the server's compile counter proves the hit
//! path), round-trips a compiled artifact through `FetchSnapshot`,
//! streams a fault-sim job's progress frames, and checks the served
//! result bit-identical against a direct in-process serial call before
//! draining the server.
//!
//! ```text
//! cargo run --release --example serve_tcp             # csa16 + mul8
//! cargo run --release --example serve_tcp -- --fast   # csa16 only
//! SINW_SERVE_TCP_FAST=1 cargo run --release --example serve_tcp  # CI smoke
//! ```

use std::sync::Arc;

use sinw::atpg::faultsim::seeded_patterns;
use sinw::atpg::simulate_faults;
use sinw::server::net::{NetClient, NetConfig, NetServer};
use sinw::server::registry::compile_circuit;
use sinw::server::snapshot::Snapshot;
use sinw::server::wire::{WireJob, WireOutcome};
use sinw::switch::generate::array_multiplier;
use sinw::switch::iscas::{parse_bench, to_bench, CSA16_BENCH};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_SERVE_TCP_FAST").is_ok_and(|v| v != "0");
    // CI arms a chunk delay (SINW_FAILPOINTS) and sets this to insist
    // the stream shows the job actually advancing; without the delay a
    // small job can legitimately finish inside one poll tick.
    let assert_stream = std::env::var("SINW_SERVE_TCP_ASSERT_STREAM").is_ok_and(|v| v != "0");

    let store_dir = std::env::temp_dir().join(format!("sinw_serve_tcp_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut config = NetConfig::default();
    config.store_dir = Some(store_dir.clone());
    let server = NetServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr} (store: {})", store_dir.display());

    let mut suite: Vec<(String, String)> = vec![("csa16".to_string(), CSA16_BENCH.to_string())];
    if !fast {
        suite.push(("mul8".to_string(), to_bench(&array_multiplier(8), "mul8")));
    }

    let mut client = NetClient::connect(addr).expect("connect");
    for (name, source) in &suite {
        // Cold, then warm: the second registration of identical content
        // must hit the cache, not recompile.
        let compiles_before = server.registry().stats().compiles;
        let (key, approx_bytes) = client.register_bench(name, source).expect("register cold");
        let (key_again, _) = client.register_bench(name, source).expect("register warm");
        assert_eq!(key, key_again, "content keys are deterministic");
        let stats = server.registry().stats();
        assert_eq!(
            stats.compiles,
            compiles_before + 1,
            "warm registration must not recompile"
        );
        println!(
            "{name:>6}: key {key:#018x}, ~{:.1} KiB resident, compiles {} / hits {}",
            approx_bytes as f64 / 1024.0,
            stats.compiles,
            stats.hits,
        );

        // The registered artifact round-trips through FetchSnapshot as
        // the same versioned `.sinw` bytes the store persists.
        let bytes = client.fetch_snapshot(key).expect("fetch snapshot");
        let snapshot = Snapshot::decode(&bytes).expect("served snapshot decodes");
        assert_eq!(
            &snapshot.name, name,
            "snapshot names the registered circuit"
        );
        println!("{name:>6}: snapshot round-trip {} bytes", bytes.len());

        // Stream a fault-sim job and check it bit-identical against a
        // direct serial call on the same compiled circuit.
        let circuit = parse_bench(source).expect("demo source parses");
        let compiled = Arc::new(compile_circuit(name, circuit));
        let patterns = seeded_patterns(compiled.circuit().primary_inputs().len(), 64, 0xD47E);
        let reference = WireOutcome::from_fault_sim(&simulate_faults(
            compiled.circuit(),
            &compiled.collapsed().representatives,
            &patterns,
            true,
        ));

        let job = client
            .submit(WireJob::FaultSim {
                key,
                patterns,
                drop_detected: true,
                threads: 2,
                timeout_ms: 120_000,
            })
            .expect("submit");
        let mut frames = 0usize;
        let mut seen = std::collections::BTreeSet::new();
        let outcome = client
            .await_job(job, |done, total| {
                frames += 1;
                seen.insert(done);
                println!("{name:>6}: job {job} progress {done}/{total}");
            })
            .expect("await");
        assert_eq!(
            outcome, reference,
            "wire result must match the serial engine"
        );
        if assert_stream {
            assert!(
                seen.len() >= 2,
                "{name}: expected >= 2 distinct streamed progress values, saw {seen:?}"
            );
        }
        match &outcome {
            WireOutcome::FaultSim {
                detected,
                undetected,
                ..
            } => println!(
                "{name:>6}: {frames} progress frames, {} detected / {} undetected — bit-identical to serial",
                detected.len(),
                undetected.len(),
            ),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} session(s), {} job(s) served, {} registry entr{} (~{:.1} KiB)",
        stats.sessions,
        stats.jobs_submitted,
        stats.entries,
        if stats.entries == 1 { "y" } else { "ies" },
        stats.bytes as f64 / 1024.0,
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("drained clean.");
}

//! Cell-aware test generation for a 4-bit TIG ripple-carry adder (XOR3 +
//! MAJ3 full adders): classical stuck-at ATPG with collapsing and
//! compaction, then the cell-aware campaign for the CP-specific defects.
//!
//! Run with `cargo run --release --example adder_testgen`.

use sinw_atpg::collapse::collapse;
use sinw_atpg::fault_list::enumerate_stuck_at;
use sinw_atpg::faultsim::{compact_reverse, simulate_faults};
use sinw_atpg::podem::{fill_cube, generate_test, PodemConfig, PodemResult};
use sinw_core::cell_aware::{generate_campaign, LiftedTest};
use sinw_core::dictionary::{build_dictionary, CellDictionary};
use sinw_device::{TigFet, TigTable};
use sinw_switch::cells::CellKind;
use sinw_switch::gate::Circuit;
use std::sync::Arc;

fn main() {
    let c = Circuit::ripple_adder(4);
    println!(
        "4-bit TIG ripple adder: {} gates, {} signals, {} PIs",
        c.gates().len(),
        c.signal_count(),
        c.primary_inputs().len()
    );

    // Classical stuck-at flow.
    let faults = enumerate_stuck_at(&c);
    let collapsed = collapse(&c, &faults);
    println!(
        "stuck-at universe: {} faults, {} after collapsing ({:.0}%)",
        faults.len(),
        collapsed.representatives.len(),
        100.0 * collapsed.ratio()
    );
    let config = PodemConfig::default();
    let mut patterns = Vec::new();
    for fault in &collapsed.representatives {
        if let PodemResult::Test(p) = generate_test(&c, *fault, &config) {
            patterns.push(fill_cube(&p, false));
        }
    }
    let report = simulate_faults(&c, &faults, &patterns, true);
    println!(
        "PODEM: {} patterns, fault coverage {:.1}%",
        patterns.len(),
        100.0 * report.coverage()
    );
    let compacted = compact_reverse(&c, &faults, &patterns);
    println!(
        "after reverse-order compaction: {} patterns",
        compacted.len()
    );

    // Cell-aware campaign for the CP-specific defects.
    println!("\nbuilding cell dictionaries (analog fault injection)...");
    let table = Arc::new(TigTable::build_standard(&TigFet::ideal()));
    let dicts: Vec<(CellKind, CellDictionary)> = [CellKind::Xor3, CellKind::Maj3]
        .into_iter()
        .map(|k| (k, build_dictionary(k, &table)))
        .collect();
    let dict_of = |kind: CellKind| -> Option<CellDictionary> {
        dicts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| d.clone())
    };
    let campaign = generate_campaign(&c, &dict_of, &config);
    let mut by_kind = [0usize; 5];
    for (_, lifted) in &campaign {
        let idx = match lifted {
            Some(LiftedTest::OutputObservable { .. }) => 0,
            Some(LiftedTest::IddqObservable { .. }) => 1,
            Some(LiftedTest::TwoPattern { .. }) => 2,
            Some(LiftedTest::NeedsPolarityAccess) => 3,
            None => 4,
        };
        by_kind[idx] += 1;
    }
    println!(
        "cell-aware campaign over {} targets:\n  PO-observable {}\n  IDDQ vectors {}\n  two-pattern {}\n  need polarity access (new algorithm) {}\n  uncovered {}",
        campaign.len(),
        by_kind[0],
        by_kind[1],
        by_kind[2],
        by_kind[3],
        by_kind[4]
    );
}

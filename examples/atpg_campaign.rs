//! Full ATPG campaign over every benchmark: random-pattern phase with
//! fault dropping, deterministic PODEM phase with untestable/aborted
//! accounting, and don't-care-aware static + reverse-order compaction —
//! the pipeline that *produces* a compact, verified test set rather than
//! simulating one supplied from outside.
//!
//! ```text
//! cargo run --release --example atpg_campaign          # full widths
//! cargo run --release --example atpg_campaign -- --fast
//! SINW_ATPG_FAST=1 cargo run --release --example atpg_campaign   # CI smoke
//! ```

use sinw::atpg::tpg::{AtpgConfig, AtpgEngine};
use sinw::server::registry::CircuitRegistry;
use sinw::switch::iscas::CSA16_BENCH;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_ATPG_FAST").is_ok_and(|v| v != "0");
    let result = sinw::core::experiments::atpg_campaign(fast);
    print!("{result}");

    // The same campaign as a service request: the registry supplies the
    // compiled front half (parse → CP map → collapse → SimGraph), and a
    // second registration of the identical source is a pure cache hit —
    // the counters prove no recompile happened.
    let registry = CircuitRegistry::new();
    let compiled = registry
        .register_bench("csa16", CSA16_BENCH)
        .expect("embedded csa16 parses");
    let again = registry
        .register_bench("csa16", CSA16_BENCH)
        .expect("already registered");
    assert!(std::sync::Arc::ptr_eq(&compiled, &again));
    let report = AtpgEngine::new(compiled.circuit(), AtpgConfig::default())
        .run(&compiled.collapsed().representatives);
    let stats = registry.stats();
    println!(
        "\nregistry-backed csa16 campaign: {} patterns for {} representatives \
         ({} compile, {} hit — the warm registration reused the artifact)",
        report.patterns.len(),
        compiled.collapsed().representatives.len(),
        stats.compiles,
        stats.hits,
    );
}

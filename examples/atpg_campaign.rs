//! Full ATPG campaign over every benchmark: random-pattern phase with
//! fault dropping, deterministic PODEM phase with untestable/aborted
//! accounting, and don't-care-aware static + reverse-order compaction —
//! the pipeline that *produces* a compact, verified test set rather than
//! simulating one supplied from outside.
//!
//! ```text
//! cargo run --release --example atpg_campaign          # full widths
//! cargo run --release --example atpg_campaign -- --fast
//! SINW_ATPG_FAST=1 cargo run --release --example atpg_campaign   # CI smoke
//! ```

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_ATPG_FAST").is_ok_and(|v| v != "0");
    let result = sinw::core::experiments::atpg_campaign(fast);
    print!("{result}");
}

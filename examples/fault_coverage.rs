//! End-to-end benchmark fault coverage: parse / generate every benchmark,
//! map it onto the CP cell library, collapse the stuck-at universe, run
//! thread-parallel PPSFP, and print the coverage table.
//!
//! ```text
//! cargo run --release --example fault_coverage          # full widths
//! cargo run --release --example fault_coverage -- --fast
//! ```

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let result = sinw::core::experiments::fault_coverage(fast);
    print!("{result}");
}

//! The fault atlas: inductive fault analysis over the whole Fig. 2 cell
//! library — every physical defect, its switch-level abstraction and the
//! fault model that detects it (Table I + the Section V classification).
//!
//! Run with `cargo run --release --example fault_atlas`.

use sinw_core::experiments::Experiments;
use sinw_core::fault_model::CellClassification;
use sinw_core::process::{enumerate_defects, DefectSite};
use sinw_switch::cells::{Cell, CellKind};

fn main() {
    let ctx = Experiments::fast();
    println!("{}", ctx.table1());

    for kind in CellKind::ALL {
        let class = CellClassification::build(kind);
        println!(
            "\n== {kind} ({} transistors, {} defects, {} need new models) ==",
            Cell::build(kind).transistors.len(),
            enumerate_defects(&Cell::build(kind)).len(),
            class.needs_new_models()
        );
        for c in &class.classified {
            let site = match &c.defect.site {
                DefectSite::Channel(t) => format!("t{} channel", t + 1),
                DefectSite::Gate(t, r) => format!("t{} {r} dielectric", t + 1),
                DefectSite::AdjacentGates(t, a, b) => format!("t{} {a}-{b}", t + 1),
                DefectSite::PolarityToRail(t, v) => {
                    format!("t{} PG-{}", t + 1, if *v { "Vdd" } else { "GND" })
                }
                DefectSite::Net(n) => format!("net {n}"),
            };
            let models: Vec<String> = c.detected_by.iter().map(ToString::to_string).collect();
            println!(
                "  {:24} {:18} -> {}",
                site,
                c.defect.class.to_string(),
                if models.is_empty() {
                    "benign (no behavioural change)".to_string()
                } else {
                    models.join(", ")
                }
            );
        }
    }
}

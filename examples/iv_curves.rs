//! Regenerate the device-level figures: the Fig. 3 I–V curves with
//! gate-oxide shorts and the Fig. 4 electron densities, as CSV on stdout.
//!
//! Run with `cargo run --release --example iv_curves`.

use sinw_core::experiments::Experiments;
use sinw_device::geometry::{DeviceGeometry, GateTerminal, Region};

fn main() {
    // Fig. 1: the device structure the model simulates.
    let g = DeviceGeometry::table_ii();
    println!("# TIG-SiNWFET region map (Fig. 1, Table II):");
    let map = g.region_map();
    let mut last: Option<Region> = None;
    for (i, r) in map.iter().enumerate() {
        if last != Some(*r) {
            let label = match r {
                Region::Gated(t) => t.to_string(),
                Region::Spacer => "spacer".to_string(),
            };
            println!("#   {:5.1} nm  {label}", g.x_of(i) * 1e9);
            last = Some(*r);
        }
    }
    println!("# natural length = {:.2} nm", g.natural_length() * 1e9);

    let ctx = Experiments::standard();

    let fig3 = ctx.fig3();
    println!("\n# Fig. 3: I_D(V_CG) at V_DS = 1.2 V");
    println!("vcg,healthy,gos_pgs,gos_cg,gos_pgd");
    let n = fig3.curves[0].1.len();
    for i in 0..n {
        let vcg = fig3.curves[0].1[i].0;
        let row: Vec<String> = fig3
            .curves
            .iter()
            .map(|(_, c)| format!("{:.4e}", c[i].1))
            .collect();
        println!("{vcg:.3},{}", row.join(","));
    }
    println!("\n{fig3}");

    let fig4 = ctx.fig4();
    println!("{fig4}");
    for site in GateTerminal::ALL {
        println!("# density drop at {site}: {:.1}x", fig4.ratio(site));
    }
}

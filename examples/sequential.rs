//! Sequential circuits end to end: scan insertion over the ISCAS-89
//! `s27` machine and the registered generator variants, stuck-at ATPG on
//! the per-frame scan view through the unchanged campaign engine, and
//! launch-on-capture transition-delay ATPG on the 2-frame time-frame
//! expansion.
//!
//! ```text
//! cargo run --release --example sequential            # full widths
//! cargo run --release --example sequential -- --fast
//! SINW_SEQ_FAST=1 cargo run --release --example sequential   # CI smoke
//! SINW_SEQ_FRAMES=4 SINW_SCAN=partial cargo run --release --example sequential
//! ```

use sinw::atpg::transition::{enumerate_transition, TransitionAtpg, TransitionAtpgConfig};
use sinw::atpg::unroll::{unroll, UnrollConfig};
use sinw::switch::iscas::parse_bench_seq;
use sinw::switch::iscas::S27_BENCH;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_SEQ_FAST").is_ok_and(|v| v != "0");
    let result = sinw::core::experiments::sequential(fast);
    print!("{result}");

    // A worked LOC pair on s27: unroll two frames, run the transition
    // campaign, and show one two-pattern test the way a tester would
    // apply it (scan-load the launch state, pulse, capture).
    let s27 = parse_bench_seq(S27_BENCH).expect("embedded s27 parses");
    let unrolled = unroll(&s27, &UnrollConfig::full_observability(2));
    println!(
        "\ns27: {} core cells -> {} cells across 2 frames, {} unrolled PIs",
        s27.core().gates().len(),
        unrolled.circuit().gates().len(),
        unrolled.circuit().primary_inputs().len()
    );
    let engine = TransitionAtpg::new(&s27, TransitionAtpgConfig::default());
    let faults = enumerate_transition(engine.circuit());
    let report = engine.run(&faults);
    println!(
        "s27 transition campaign: {}/{} detected ({} untestable, {} aborted), {} pairs",
        report.detected_random + report.detected_deterministic,
        report.total_faults,
        report.untestable,
        report.aborted,
        report.pairs.len()
    );
    if let Some(pair) = report.pairs.first() {
        let names: Vec<&str> = engine
            .circuit()
            .primary_inputs()
            .iter()
            .map(|pi| engine.circuit().signal_name(*pi))
            .collect();
        let fmt = |v: &[bool]| -> String { v.iter().map(|b| if *b { '1' } else { '0' }).collect() };
        println!("first pair over ({}):", names.join(", "));
        println!("  launch  {}", fmt(&pair.init));
        println!(
            "  capture {}  (state bits = machine's own next state)",
            fmt(&pair.eval)
        );
    }
}

//! ATPG as a service: the registry / snapshot / job-engine demo.
//!
//! Registers each demo circuit cold, re-registers it warm (the hit path
//! skips parse, CP mapping, fault collapse, and graph build — the
//! registry's compile counter proves it), round-trips every compiled
//! artifact through the versioned `.sinw` snapshot format, and pushes a
//! fault-sim job through the bounded job engine to confirm the result is
//! bit-identical to a direct serial engine call.
//!
//! ```text
//! cargo run --release --example serve            # csa16 + mul32 + c6288-class
//! cargo run --release --example serve -- --fast  # csa16 + mul8
//! SINW_SERVE_FAST=1 cargo run --release --example serve   # CI smoke
//! ```

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_SERVE_FAST").is_ok_and(|v| v != "0");
    let result = sinw::core::experiments::service(fast);
    print!("{result}");
    println!(
        "worst cold/hit speedup across the suite: {:.0}x",
        result.worst_speedup()
    );
}

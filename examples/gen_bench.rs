//! Emit a parametric benchmark circuit as ISCAS-85 `.bench` text.
//!
//! This is the tool that produced the embedded `csa16` fixture of
//! `sinw-switch`; use it to cut new workloads for the fault-coverage
//! experiments:
//!
//! ```text
//! cargo run --example gen_bench -- csa 16 4   # carry-select adder
//! cargo run --example gen_bench -- rca 8      # ripple-carry adder
//! cargo run --example gen_bench -- mul 4      # array multiplier
//! cargo run --example gen_bench -- par 32     # parity tree
//! ```
//!
//! The text goes to stdout; redirect it into a file and feed it back with
//! `sinw::switch::iscas::parse_bench`.

use sinw::switch::gate::Circuit;
use sinw::switch::generate::{array_multiplier, carry_select_adder};
use sinw::switch::iscas::to_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: gen_bench <rca|csa|mul|par> <width> [block]";
    let (family, rest) = args.split_first().unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let width: usize = rest
        .first()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{usage}");
            std::process::exit(2);
        });
    let (title, circuit) = match family.as_str() {
        "rca" => (
            format!("rca{width} — {width}-bit ripple-carry adder"),
            Circuit::ripple_adder(width),
        ),
        "csa" => {
            let block: usize = rest.get(1).and_then(|b| b.parse().ok()).unwrap_or(4);
            (
                format!("csa{width} — {width}-bit carry-select adder ({block}-bit blocks)"),
                carry_select_adder(width, block),
            )
        }
        "mul" => (
            format!("mul{width} — {width}x{width} array multiplier"),
            array_multiplier(width),
        ),
        "par" => (
            format!("par{width} — {width}-input parity tree"),
            Circuit::parity_tree(width),
        ),
        other => {
            eprintln!("unknown family {other:?}; {usage}");
            std::process::exit(2);
        }
    };
    print!("{}", to_bench(&circuit, &title));
}

//! Quickstart: the paper's headline result in one run.
//!
//! Builds the DP XOR2 of Fig. 2b, shows that a channel break is invisible
//! to functional, IDDQ and classical stuck-open testing, then detects it
//! with the paper's polarity-injection algorithm.
//!
//! Run with `cargo run --release --example quickstart`.

use sinw_core::cbreak::{
    bridge_injection_verdict, dual_rail_test, masking_measurements, run_dual_rail_test, Verdict,
};
use sinw_core::dictionary::build_dictionary;
use sinw_device::{TigFet, TigTable};
use sinw_switch::cells::{Cell, CellKind};
use std::sync::Arc;

fn main() {
    println!("== CP-SiNW fault modeling quickstart ==\n");

    // 1. The XOR2 cell computes A xor B through two redundant device pairs.
    let cell = Cell::build(CellKind::Xor2);
    assert!(cell.verify_truth_table().is_empty());
    println!("XOR2 truth table verified at switch level (4 transistors).");

    // 2. Characterise the device and build the compact-model table.
    println!("building the TIG-SiNWFET table model (synthetic TCAD)...");
    let table = Arc::new(TigTable::build_standard(&TigFet::ideal()));

    // 3. Break t1's channel: the cell still works, barely leaks, and is
    //    barely slower — the masking problem of Section V-C.
    let masking = masking_measurements(CellKind::Xor2, 0, &table);
    println!(
        "channel break on t1: functional={}, dLeak={:.2}x, dDelay={:.2}x",
        masking.functionality_intact, masking.leakage_ratio, masking.delay_ratio
    );
    let sof = sinw_atpg::sof::cell_sof_tests(CellKind::Xor2, 0);
    println!(
        "classical two-pattern (stuck-open) tests found: {}",
        sof.len()
    );

    // 4. The paper's algorithm: inject the complement polarity, apply the
    //    Table III vector, and read the verdict from the (non-)anomaly.
    let dict = build_dictionary(CellKind::Xor2, &table);
    for broken in [false, true] {
        let verdict = bridge_injection_verdict(CellKind::Xor2, 0, &dict, &table, broken);
        println!("polarity-injection verdict with channel_broken={broken}: {verdict:?}");
        assert_eq!(
            verdict,
            if broken {
                Verdict::ChannelBroken
            } else {
                Verdict::ChannelIntact
            }
        );
    }

    // 5. Bonus: the dual-rail pattern variant (pure test patterns, no
    //    terminal access) for the separable pull-up pair.
    let test = dual_rail_test(CellKind::Xor2, 0).expect("t1 is pattern-separable");
    println!(
        "dual-rail pattern test for t1: init={:?}, healthy -> {:?}, broken -> {:?}",
        test.init,
        run_dual_rail_test(CellKind::Xor2, &test, false),
        run_dual_rail_test(CellKind::Xor2, &test, true),
    );
    println!("\nquickstart complete.");
}

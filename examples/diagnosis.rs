//! Fault dictionary + diagnosis over every benchmark: build the
//! compressed circuit-level pass/fail dictionary with the
//! signature-capture PPSFP engine (keyed by the ATPG campaign's compacted
//! test set), then close the loop — inject faults, observe their failing
//! responses with the independent full-pass oracle, and look them up.
//!
//! ```text
//! cargo run --release --example diagnosis            # full widths
//! cargo run --release --example diagnosis -- --fast
//! SINW_DIAG_FAST=1 cargo run --release --example diagnosis   # CI smoke
//! ```

use sinw::atpg::diagnose::{full_pass_observations, FaultDictionary};
use sinw::atpg::tpg::{AtpgConfig, AtpgEngine};
use sinw::server::registry::CircuitRegistry;
use sinw::switch::iscas::CSA16_BENCH;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast")
        || std::env::var("SINW_DIAG_FAST").is_ok_and(|v| v != "0");
    let result = sinw::core::experiments::diagnosis(fast);
    print!("{result}");

    // A worked diagnosis on csa16: inject one fault, log what a tester
    // would see, and rank the candidates. The front half — parse, CP
    // mapping, fault enumeration, collapse, graph build — comes from the
    // compiled-circuit registry (the same single compile path the
    // experiment drivers and the service layer use), not a second
    // hand-rolled pipeline.
    let registry = CircuitRegistry::new();
    let compiled = registry
        .register_bench("csa16", CSA16_BENCH)
        .expect("embedded csa16 parses");
    let csa = compiled.circuit();
    let faults = compiled.faults();
    let report =
        AtpgEngine::new(csa, AtpgConfig::default()).run(&compiled.collapsed().representatives);
    let dict = FaultDictionary::build_threaded(csa, faults, &report.patterns, 0);
    let injected = faults.len() / 3;
    let obs = full_pass_observations(csa, faults[injected], &report.patterns);
    let diag = dict.diagnose(&obs);
    println!(
        "\ninjected {} into csa16: {} failing (pattern, output) probes observed",
        faults[injected].describe(csa),
        obs.len()
    );
    for cand in diag.candidates.iter().take(3) {
        let members: Vec<String> = dict
            .class_members(cand.class)
            .iter()
            .map(|fi| faults[*fi].describe(csa))
            .collect();
        println!(
            "  class {:>4}  distance {:>3}{}  {{{}}}",
            cand.class,
            cand.distance,
            if cand.exact { " (exact)" } else { "" },
            members.join(", ")
        );
    }
}

//! # sinw — fault modeling in controllable-polarity SiNW circuits
//!
//! Umbrella crate of the DATE 2015 reproduction *"Fault Modeling in
//! Controllable Polarity Silicon Nanowire Circuits"* (H. Ghasemzadeh
//! Mohammadi, P.-E. Gaillardon, G. De Micheli). It re-exports the five
//! substrate crates plus the service layer so the repo-level `examples/` and
//! `tests/` can reach the whole stack through one dependency, and so
//! downstream users get a single entry point:
//!
//! | crate | layer |
//! |-------|-------|
//! | [`device`] (`sinw-device`) | synthetic TCAD: Poisson + WKB transport, defects, table model |
//! | [`analog`] (`sinw-analog`) | SPICE-like Newton-MNA DC / transient solver over the table model |
//! | [`switch`] (`sinw-switch`) | three-valued switch-level simulation, Fig. 2 cell library |
//! | [`atpg`] (`sinw-atpg`) | classical PODEM / fault-simulation / stuck-open baselines |
//! | [`core`] (`sinw-core`) | the paper's contributions: IFA census, dictionaries, channel-break tests |
//! | [`server`] (`sinw-server`) | service layer: compiled-circuit registry, `.sinw` snapshots, job engine |
//!
//! ```
//! use sinw::switch::cells::{Cell, CellKind};
//!
//! // The whole stack is reachable through the umbrella:
//! let xor2 = Cell::build(CellKind::Xor2);
//! assert!(xor2.verify_truth_table().is_empty());
//! ```
//!
//! See `README.md` for the crate map and quickstart, and `EXPERIMENTS.md`
//! for the mapping from experiment drivers to the paper's tables and figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sinw_analog as analog;
pub use sinw_atpg as atpg;
pub use sinw_core as core;
pub use sinw_device as device;
pub use sinw_server as server;
pub use sinw_switch as switch;
